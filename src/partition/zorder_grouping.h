#ifndef ZSKY_PARTITION_ZORDER_GROUPING_H_
#define ZSKY_PARTITION_ZORDER_GROUPING_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/point_set.h"
#include "partition/partitioner.h"
#include "zorder/rz_region.h"
#include "zorder/zaddress.h"
#include "zorder/zorder_codec.h"

namespace zsky {

// The three Z-order partition-grouping strategies of Section 4.
enum class GroupingStrategy {
  kNaiveZ,     // Section 4.1: M equal-count Z-ranges, one group each.
  kHeuristic,  // Section 4.2 / Algorithm 1 (ZHG): balance sample-skyline
               // counts and sizes across groups.
  kDominance,  // Section 4.3 / Algorithm 2 (ZDG): greedily co-locate
               // partitions with large mutual dominance volume; prune
               // partitions whose region is fully dominated.
};

std::string_view GroupingStrategyName(GroupingStrategy s);

// Z-order partitioner + partition grouping, learned from a sample
// (the paper's preprocessing phase output: pivots + PGmap).
//
// Partitions are contiguous Z-address ranges cut at sample quantiles so
// each receives ~|sample|/count points (data-skew reduction, Section 4.1).
// Groups are unions of partitions per the selected strategy. Points whose
// partition was pruned (ZDG only) route to kDroppedGroup: their partition's
// whole RZ-region is dominated by another non-empty partition, so they
// cannot be skyline points.
class ZOrderGroupedPartitioner : public Partitioner {
 public:
  struct Options {
    // M: target number of groups (reduce-side workers).
    uint32_t num_groups = 8;
    // delta: partition expansion factor; ZHG/ZDG start from
    // num_groups * expansion partitions.
    uint32_t expansion = 4;
    GroupingStrategy strategy = GroupingStrategy::kDominance;
  };

  // Learns the plan from `sample`. `codec` must outlive the partitioner.
  ZOrderGroupedPartitioner(const ZOrderCodec* codec, const PointSet& sample,
                           const Options& options);

  // Reconstructs a partitioner from previously learned plan state — the
  // paper's "the preprocessing step outputs the data partitioning rules"
  // (Section 5.1). `lowers` are the partitions' inclusive lower-bound
  // addresses (ascending, first == MinAddress); `group_of` maps partitions
  // to groups (kDroppedGroup for pruned ones); the sample skyline feeds
  // the SZB mapper filter. See io/plan_io.h for the byte format.
  static ZOrderGroupedPartitioner FromPlanParts(
      const ZOrderCodec* codec, const Options& options,
      std::vector<ZAddress> lowers, std::vector<int32_t> group_of,
      std::vector<uint32_t> sample_counts,
      std::vector<uint32_t> skyline_counts, PointSet sample_skyline);

  uint32_t num_groups() const override { return num_groups_; }
  int32_t GroupOf(std::span<const Coord> p) const override;
  std::string_view name() const override {
    return GroupingStrategyName(options_.strategy);
  }

  int32_t GroupOfAddress(const ZAddress& z) const;

  // Partition index (the Z-range containing p's address) in
  // [0, num_partitions()); allocation-free like GroupOf. Query variants
  // use it to consult a per-query partition table (constraint-box region
  // pruning, k-skyband reroutes of ZDG-pruned partitions) before the
  // partition's static group assignment is applied.
  size_t PartitionOf(std::span<const Coord> p) const;

  const ZOrderCodec& codec() const { return *codec_; }

  // --- Introspection (tests, benches, executor). ---
  size_t num_partitions() const { return lowers_.size(); }
  // Inclusive lower Z-address bound of partition `i`.
  const ZAddress& partition_lower(size_t i) const { return lowers_[i]; }
  const RZRegion& partition_region(size_t i) const { return regions_[i]; }
  int32_t group_of_partition(size_t i) const { return group_of_[i]; }
  uint32_t partition_sample_count(size_t i) const { return sample_counts_[i]; }
  uint32_t partition_skyline_count(size_t i) const {
    return skyline_counts_[i];
  }
  size_t pruned_partition_count() const { return pruned_count_; }

  // The sample's skyline points (reused by the executor's SZB-tree filter).
  const PointSet& sample_skyline() const { return sample_skyline_; }

 private:
  // Bare-bones constructor for FromPlanParts.
  struct FromPartsTag {};
  ZOrderGroupedPartitioner(const ZOrderCodec* codec, const Options& options,
                           FromPartsTag)
      : codec_(codec),
        options_(options),
        sorted_sample_(codec->dim()),
        sample_skyline_(codec->dim()) {}

  struct Part {
    size_t begin;  // Range of z-sorted sample indices covered.
    size_t end;
    uint32_t skyline_count = 0;
    bool pruned = false;
    int32_t group = kDroppedGroup;
  };

  void BuildParts(const std::vector<size_t>& cuts,
                  const std::vector<uint8_t>& skyline_flags,
                  std::vector<Part>& parts) const;
  void RedistributeBySkyline(uint32_t cap,
                             const std::vector<uint8_t>& skyline_flags,
                             std::vector<Part>& parts) const;
  std::vector<RZRegion> ComputeRegions(const std::vector<Part>& parts) const;
  void GroupHeuristic(std::vector<Part>& parts) const;
  void GroupDominance(std::vector<Part>& parts,
                      const std::vector<RZRegion>& regions);
  void Finalize(const std::vector<Part>& parts,
                std::vector<RZRegion> regions);

  // Inclusive lower-bound address of a part (MinAddress for the first).
  ZAddress PartLowerAddress(const Part& part) const;

  const ZOrderCodec* codec_;
  Options options_;

  // Z-sorted sample (addresses parallel to points).
  PointSet sorted_sample_;
  std::vector<ZAddress> sorted_addresses_;

  PointSet sample_skyline_;

  // Final plan (parallel arrays over partitions, ascending by lower bound).
  std::vector<ZAddress> lowers_;
  std::vector<RZRegion> regions_;
  std::vector<int32_t> group_of_;
  std::vector<uint32_t> sample_counts_;
  std::vector<uint32_t> skyline_counts_;
  uint32_t num_groups_ = 0;
  size_t pruned_count_ = 0;
};

}  // namespace zsky

#endif  // ZSKY_PARTITION_ZORDER_GROUPING_H_
