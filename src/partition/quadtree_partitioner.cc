#include "partition/quadtree_partitioner.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/macros.h"

namespace zsky {

QuadTreePartitioner::QuadTreePartitioner(const PointSet& sample, uint32_t m) {
  ZSKY_CHECK(!sample.empty());
  ZSKY_CHECK(m >= 1);
  const uint32_t dim = sample.dim();

  // Leaf work-list entry: node index + the sample rows it covers + the
  // next dimension to split on.
  struct Pending {
    int32_t node;
    std::vector<uint32_t> rows;
    uint32_t next_dim;
  };
  auto heavier = [](const Pending& a, const Pending& b) {
    return a.rows.size() < b.rows.size();
  };
  std::priority_queue<Pending, std::vector<Pending>, decltype(heavier)> queue(
      heavier);

  nodes_.push_back(Node{});
  std::vector<uint32_t> all(sample.size());
  std::iota(all.begin(), all.end(), 0u);
  queue.push({0, std::move(all), 0});
  size_t leaves = 1;

  while (leaves < m && !queue.empty()) {
    Pending top = std::move(const_cast<Pending&>(queue.top()));
    queue.pop();
    if (top.rows.size() < 2) {
      // Unsplittable: keep as leaf (re-queue would loop).
      Node& node = nodes_[top.node];
      node.leaf_id = 0;  // Assigned in the numbering pass below.
      continue;
    }
    // Median split on next_dim; cycle dims until one actually separates
    // the rows (all-equal dimensions are skipped).
    bool split_done = false;
    for (uint32_t attempt = 0; attempt < dim && !split_done; ++attempt) {
      const uint32_t d = (top.next_dim + attempt) % dim;
      std::vector<Coord> values(top.rows.size());
      for (size_t i = 0; i < top.rows.size(); ++i) {
        values[i] = sample[top.rows[i]][d];
      }
      std::nth_element(values.begin(), values.begin() + values.size() / 2,
                       values.end());
      const Coord median = values[values.size() / 2];
      std::vector<uint32_t> left;
      std::vector<uint32_t> right;
      for (uint32_t row : top.rows) {
        (sample[row][d] <= median ? left : right).push_back(row);
      }
      // Degenerate medians (heavy duplicates) can leave one side empty.
      if (left.empty() || right.empty()) continue;

      const auto left_index = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(Node{});
      const auto right_index = static_cast<int32_t>(nodes_.size());
      nodes_.push_back(Node{});
      Node& node = nodes_[top.node];
      node.split_dim = d;
      node.split_value = median;
      node.left = left_index;
      node.right = right_index;
      queue.push({left_index, std::move(left), (d + 1) % dim});
      queue.push({right_index, std::move(right), (d + 1) % dim});
      ++leaves;
      split_done = true;
    }
    if (!split_done) {
      nodes_[top.node].leaf_id = 0;  // All dims constant: final leaf.
    }
  }

  // Number the leaves (everything still pending plus marked nodes).
  int32_t next_leaf = 0;
  for (auto& node : nodes_) {
    if (node.left < 0) node.leaf_id = next_leaf++;
  }
  num_leaves_ = static_cast<uint32_t>(next_leaf);
}

int32_t QuadTreePartitioner::GroupOf(std::span<const Coord> p) const {
  int32_t index = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<size_t>(index)];
    if (node.left < 0) return node.leaf_id;
    index = (p[node.split_dim] <= node.split_value) ? node.left : node.right;
  }
}

}  // namespace zsky
