#include "partition/random_partitioner.h"

#include "common/macros.h"

namespace zsky {

RandomPartitioner::RandomPartitioner(uint32_t m, uint64_t seed)
    : m_(m), seed_(seed) {
  ZSKY_CHECK(m >= 1);
}

int32_t RandomPartitioner::GroupOf(std::span<const Coord> p) const {
  // Deterministic coordinate hash (FNV-1a over the coordinate bytes mixed
  // with the seed) so routing is stable across calls and runs.
  uint64_t h = 1469598103934665603ULL ^ seed_;
  for (Coord c : p) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  h ^= h >> 33;
  return static_cast<int32_t>(h % m_);
}

}  // namespace zsky
