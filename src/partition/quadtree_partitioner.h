#ifndef ZSKY_PARTITION_QUADTREE_PARTITIONER_H_
#define ZSKY_PARTITION_QUADTREE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "common/point_set.h"
#include "partition/partitioner.h"

namespace zsky {

// Quad-tree-based partitioning (the paper's cited baseline [20]):
// recursively split the most populated region at its sample median until
// `m` leaves exist. To stay usable beyond a handful of dimensions the
// splits are binary and cycle through the dimensions (a full quad split
// creates 2^d children, which is unusable at d > 5 — the same curse the
// paper attributes to this scheme; the binary variant is the standard
// scalable adaptation).
//
// Adaptive (unlike GridPartitioner's fixed per-dimension slices), but
// still axis-aligned — so joint skew across dimensions survives, which is
// what Section 3.3 criticizes.
class QuadTreePartitioner : public Partitioner {
 public:
  // Learns the tree from `sample`, producing exactly `m` leaves
  // (or sample.size() if smaller).
  QuadTreePartitioner(const PointSet& sample, uint32_t m);

  uint32_t num_groups() const override { return num_leaves_; }
  int32_t GroupOf(std::span<const Coord> p) const override;
  std::string_view name() const override { return "quadtree"; }

 private:
  struct Node {
    // Interior: split dimension + value; points with p[dim] <= value go
    // left. Leaves have leaf_id >= 0.
    uint32_t split_dim = 0;
    Coord split_value = 0;
    int32_t left = -1;    // Node indices; -1 for none.
    int32_t right = -1;
    int32_t leaf_id = -1;
  };

  uint32_t num_leaves_ = 0;
  std::vector<Node> nodes_;  // nodes_[0] is the root.
};

}  // namespace zsky

#endif  // ZSKY_PARTITION_QUADTREE_PARTITIONER_H_
