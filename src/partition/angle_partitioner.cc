#include "partition/angle_partitioner.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "partition/grid_partitioner.h"

namespace zsky {

std::vector<double> AnglePartitioner::Angles(std::span<const Coord> p) {
  const size_t d = p.size();
  std::vector<double> angles(d - 1);
  // Suffix norms: tail[k] = sqrt(sum_{j>k} p[j]^2).
  double tail_sq = 0.0;
  std::vector<double> tail(d);
  for (size_t k = d; k-- > 0;) {
    tail[k] = std::sqrt(tail_sq);
    tail_sq += static_cast<double>(p[k]) * static_cast<double>(p[k]);
  }
  for (size_t k = 0; k + 1 < d; ++k) {
    angles[k] = std::atan2(tail[k], static_cast<double>(p[k]));
  }
  return angles;
}

AnglePartitioner::AnglePartitioner(const PointSet& sample, uint32_t m) {
  ZSKY_CHECK(!sample.empty());
  ZSKY_CHECK(sample.dim() >= 2);
  const uint32_t num_axes = sample.dim() - 1;
  parts_ = FactorizeParts(m, num_axes);
  num_cells_ = 1;
  for (uint32_t p : parts_) num_cells_ *= p;

  // Collect sample angles per axis, then cut at quantiles.
  std::vector<std::vector<double>> axis_values(num_axes);
  for (auto& v : axis_values) v.reserve(sample.size());
  for (size_t i = 0; i < sample.size(); ++i) {
    const auto angles = Angles(sample[i]);
    for (uint32_t k = 0; k < num_axes; ++k) axis_values[k].push_back(angles[k]);
  }
  boundaries_.resize(num_axes);
  for (uint32_t k = 0; k < num_axes; ++k) {
    if (parts_[k] == 1) continue;
    auto& column = axis_values[k];
    std::sort(column.begin(), column.end());
    auto& cuts = boundaries_[k];
    cuts.reserve(parts_[k] - 1);
    for (uint32_t c = 1; c < parts_[k]; ++c) {
      const size_t pos = c * column.size() / parts_[k];
      cuts.push_back(column[std::min(pos, column.size() - 1)]);
    }
  }
}

int32_t AnglePartitioner::GroupOf(std::span<const Coord> p) const {
  const auto angles = Angles(p);
  uint32_t cell = 0;
  for (uint32_t k = 0; k < parts_.size(); ++k) {
    uint32_t slice = 0;
    if (parts_[k] > 1) {
      const auto& cuts = boundaries_[k];
      slice = static_cast<uint32_t>(
          std::upper_bound(cuts.begin(), cuts.end(), angles[k]) -
          cuts.begin());
    }
    cell = cell * parts_[k] + slice;
  }
  return static_cast<int32_t>(cell);
}

}  // namespace zsky
