#include "sample/reservoir.h"

#include <numeric>

namespace zsky {

std::vector<uint32_t> ReservoirSampleIndices(size_t n, size_t k, Rng& rng) {
  if (k >= n) {
    std::vector<uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }
  std::vector<uint32_t> reservoir(k);
  std::iota(reservoir.begin(), reservoir.end(), 0u);
  for (size_t i = k; i < n; ++i) {
    const uint64_t j = rng.NextBounded(i + 1);
    if (j < k) reservoir[j] = static_cast<uint32_t>(i);
  }
  return reservoir;
}

PointSet ReservoirSample(const PointSet& points, size_t k, Rng& rng) {
  const auto rows = ReservoirSampleIndices(points.size(), k, rng);
  return PointSet::Gather(points, rows);
}

}  // namespace zsky
