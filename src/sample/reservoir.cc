#include "sample/reservoir.h"

#include <algorithm>
#include <numeric>

namespace zsky {

std::vector<uint32_t> ReservoirSampleIndices(size_t n, size_t k, Rng& rng) {
  if (k >= n) {
    std::vector<uint32_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    return all;
  }
  std::vector<uint32_t> reservoir(k);
  std::iota(reservoir.begin(), reservoir.end(), 0u);
  for (size_t i = k; i < n; ++i) {
    const uint64_t j = rng.NextBounded(i + 1);
    if (j < k) reservoir[j] = static_cast<uint32_t>(i);
  }
  return reservoir;
}

PointSet ReservoirSample(const DatasetView& points, size_t k, Rng& rng) {
  auto rows = ReservoirSampleIndices(points.size(), k, rng);
  // Ascending row order: a disk-backed columnar view is gathered with a
  // forward-moving access pattern (at most one fault per touched page)
  // instead of the reservoir's scrambled slot order.
  std::sort(rows.begin(), rows.end());
  return points.Gather(rows);
}

}  // namespace zsky
