#ifndef ZSKY_SAMPLE_RESERVOIR_H_
#define ZSKY_SAMPLE_RESERVOIR_H_

#include <cstdint>
#include <vector>

#include "common/dataset_view.h"
#include "common/point_set.h"
#include "common/rng.h"

namespace zsky {

// Reservoir sampling (Algorithm R): draws a uniform sample of `k` row
// indices from a stream of `n` rows in one pass. This is the paper's
// preprocessing sampler (Section 5.1).
std::vector<uint32_t> ReservoirSampleIndices(size_t n, size_t k, Rng& rng);

// Convenience: gathers a uniform sample of `k` points from `points`.
// If k >= points.size(), returns a copy of all points. Only the k sampled
// rows are materialized (gathered in ascending row order, so an mmap'd
// columnar backing is read near-sequentially), never the full dataset —
// this is what lets plan construction stream over out-of-core datasets.
PointSet ReservoirSample(const DatasetView& points, size_t k, Rng& rng);

}  // namespace zsky

#endif  // ZSKY_SAMPLE_RESERVOIR_H_
