#ifndef ZSKY_COMMON_RNG_H_
#define ZSKY_COMMON_RNG_H_

#include <cstdint>

namespace zsky {

// Small, fast, reproducible PRNG (xoshiro256** seeded via splitmix64).
// Used everywhere instead of std::mt19937 so that generated datasets are
// identical across platforms and standard-library versions.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) { return Next() % bound; }

  // Standard normal via Box-Muller (one value per call; simple and
  // deterministic, throughput is not a concern for data generation).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    while (u1 <= 1e-300) u1 = NextDouble();
    return BoxMuller(u1, u2);
  }

 private:
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }
  static double BoxMuller(double u1, double u2);

  uint64_t state_[4];
};

}  // namespace zsky

#endif  // ZSKY_COMMON_RNG_H_
