#include "common/dataset_view.h"

#include <algorithm>

#include "common/scan_counters.h"

namespace zsky {

PointSet DatasetView::Gather(std::span<const uint32_t> rows) const {
  PointSet out(dim_);
  out.Reserve(rows.size());
  std::vector<Coord>& raw = out.mutable_raw();
  if (!columnar()) {
    for (uint32_t r : rows) {
      ZSKY_DCHECK(r < size_);
      const Coord* src = rows_ + static_cast<size_t>(r) * dim_;
      raw.insert(raw.end(), src, src + dim_);
    }
    return out;
  }
  raw.resize(rows.size() * dim_);
  // A sorted gather against a residency-bounded backing (the reservoir
  // sample sweeps the whole file: any uniform fraction touches every
  // page) is chunked by row span with the consumed pages released behind
  // each chunk, so peak residency is O(span), not O(dataset).
  if (has_release_hook() &&
      std::is_sorted(rows.begin(), rows.end())) {
    constexpr size_t kReleaseSpanRows = size_t{1} << 20;
    size_t i0 = 0;
    while (i0 < rows.size()) {
      const size_t r0 = rows[i0];
      size_t i1 = i0;
      while (i1 < rows.size() && rows[i1] < r0 + kReleaseSpanRows) ++i1;
      for (uint32_t d = 0; d < dim_; ++d) {
        const Coord* col = cols_[d];
        Coord* dst = raw.data() + i0 * dim_ + d;
        for (size_t i = i0; i < i1; ++i, dst += dim_) {
          ZSKY_DCHECK(rows[i] < size_);
          *dst = col[rows[i]];
        }
      }
      ReleaseRows(r0, static_cast<size_t>(rows[i1 - 1]) + 1);
      i0 = i1;
    }
    return out;
  }
  // Column-at-a-time gather: each pass reads one contiguous column (at
  // worst one page fault per distinct page) and scatters into the small
  // output, instead of dim strided faults per row. Unsorted gathers are
  // the pipeline's survivor sets — small by construction — so they are
  // not released.
  for (uint32_t d = 0; d < dim_; ++d) {
    const Coord* col = cols_[d];
    Coord* dst = raw.data() + d;
    for (size_t i = 0; i < rows.size(); ++i, dst += dim_) {
      ZSKY_DCHECK(rows[i] < size_);
      *dst = col[rows[i]];
    }
  }
  return out;
}

PointSet DatasetView::Materialize(size_t begin, size_t end) const {
  ZSKY_DCHECK(begin <= end && end <= size_);
  PointSet out(dim_);
  out.Reserve(end - begin);
  std::vector<Coord>& raw = out.mutable_raw();
  if (!columnar()) {
    raw.assign(rows_ + begin * dim_, rows_ + end * dim_);
    return out;
  }
  raw.resize((end - begin) * dim_);
  for (uint32_t d = 0; d < dim_; ++d) {
    const Coord* col = cols_[d] + begin;
    Coord* dst = raw.data() + d;
    for (size_t i = 0; i < end - begin; ++i, dst += dim_) *dst = col[i];
  }
  return out;
}

PointSet DatasetView::GatherAlive(const uint8_t* alive) const {
  PointSet out(dim_);
  if (alive == nullptr) return Materialize();
  size_t alive_rows = 0;
  for (size_t i = 0; i < size_; ++i) alive_rows += alive[i] != 0 ? 1 : 0;
  out.Reserve(alive_rows);
  std::vector<Coord>& raw = out.mutable_raw();
  RowBlockCursor cursor(*this, 0, size_);
  RowBlockCursor::Block block;
  while (cursor.Next(&block)) {
    for (size_t i = 0; i < block.rows; ++i) {
      if (alive[block.first_row + i] == 0) continue;
      const Coord* src = block.data + i * dim_;
      raw.insert(raw.end(), src, src + dim_);
    }
  }
  return out;
}

RowBlockCursor::RowBlockCursor(const DatasetView& view, size_t begin,
                               size_t end, size_t block_rows)
    : view_(&view),
      pos_(begin),
      end_(end),
      block_rows_(std::max<size_t>(1, block_rows)) {
  ZSKY_DCHECK(begin <= end && end <= view.size());
  if (view.columnar() && pos_ < end_) {
    buffer_.resize(std::min(block_rows_, end_ - pos_) * view.dim());
  }
}

bool RowBlockCursor::Next(Block* block) {
  if (pos_ >= end_) return false;
  const uint32_t dim = view_->dim();
  if (!view_->columnar()) {
    // One zero-copy block: identical memory walk to the pre-view code.
    block->data = view_->row(pos_).data();
    block->first_row = pos_;
    block->rows = end_ - pos_;
    pos_ = end_;
    return true;
  }
  const size_t rows = std::min(block_rows_, end_ - pos_);
  // Ask the backing for the block after this one before we start copying,
  // so its page faults overlap the transpose and the consumer's work.
  view_->WillNeedRows(pos_ + rows,
                      std::min(end_, pos_ + rows + block_rows_));
  // Transpose columns -> row-major scratch. Column-sequential reads keep
  // the page cache streaming; the strided writes land in the L1/L2-sized
  // buffer.
  for (uint32_t d = 0; d < dim; ++d) {
    const Coord* col = view_->column(d) + pos_;
    Coord* dst = buffer_.data() + d;
    for (size_t i = 0; i < rows; ++i, dst += dim) *dst = col[i];
  }
  GlobalScanCounters().transpose_bytes.fetch_add(
      static_cast<uint64_t>(rows) * dim * sizeof(Coord),
      std::memory_order_relaxed);
  block->data = buffer_.data();
  block->first_row = pos_;
  block->rows = rows;
  // The block is copied out; a budget-bounded backing may drop the pages
  // behind the scan now.
  view_->ReleaseRows(pos_, pos_ + rows);
  pos_ += rows;
  return true;
}

}  // namespace zsky
