#ifndef ZSKY_COMMON_POINT_SET_H_
#define ZSKY_COMMON_POINT_SET_H_

#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/macros.h"

namespace zsky {

// Coordinate type of all points after quantization. Smaller is better in
// every dimension (minimization convention).
using Coord = uint32_t;

// A dense, row-major table of fixed-dimensionality points.
//
// PointSet is the universal data container of the library: generators fill
// it, partitioners route its rows, skyline algorithms consume it and report
// results as row indices into it. Points are identified by their row index;
// algorithms that reshuffle data carry the original index alongside.
class PointSet {
 public:
  // Creates an empty set of `dim`-dimensional points. `dim` must be >= 1.
  explicit PointSet(uint32_t dim) : dim_(dim) { ZSKY_CHECK(dim >= 1); }

  PointSet(const PointSet&) = default;
  PointSet& operator=(const PointSet&) = default;
  PointSet(PointSet&&) = default;
  PointSet& operator=(PointSet&&) = default;

  uint32_t dim() const { return dim_; }
  size_t size() const { return coords_.size() / dim_; }
  bool empty() const { return coords_.empty(); }

  // Returns point `i` as a read-only span of `dim()` coordinates.
  std::span<const Coord> operator[](size_t i) const {
    ZSKY_DCHECK(i < size());
    return {coords_.data() + i * dim_, dim_};
  }

  // Appends one point. The span must have exactly `dim()` coordinates.
  void Append(std::span<const Coord> point) {
    ZSKY_DCHECK(point.size() == dim_);
    coords_.insert(coords_.end(), point.begin(), point.end());
  }

  void Append(std::initializer_list<Coord> point) {
    Append(std::span<const Coord>(point.begin(), point.size()));
  }

  // Appends point `i` of `other` (dimensions must match).
  void AppendFrom(const PointSet& other, size_t i) {
    ZSKY_DCHECK(other.dim_ == dim_);
    Append(other[i]);
  }

  void Reserve(size_t n) { coords_.reserve(n * dim_); }
  void Clear() { coords_.clear(); }

  // Raw storage access (row-major), for bulk operations / serialization.
  const std::vector<Coord>& raw() const { return coords_; }
  std::vector<Coord>& mutable_raw() { return coords_; }

  // Builds a PointSet from an index list into `src` (gather).
  static PointSet Gather(const PointSet& src, std::span<const uint32_t> rows) {
    PointSet out(src.dim());
    out.Reserve(rows.size());
    for (uint32_t r : rows) out.AppendFrom(src, r);
    return out;
  }

 private:
  uint32_t dim_;
  std::vector<Coord> coords_;
};

}  // namespace zsky

#endif  // ZSKY_COMMON_POINT_SET_H_
