#include "common/dominance_block.h"

#include <algorithm>

namespace zsky {

bool SoAAnyDominates(const Coord* base, size_t stride, uint32_t dim,
                     size_t begin, size_t end, std::span<const Coord> p) {
  ZSKY_DCHECK(p.size() == dim);
  uint8_t leq[kDominanceTile];
  uint8_t lt[kDominanceTile];
  const Coord p0 = p[0];
  for (size_t at = begin; at < end; at += kDominanceTile) {
    const size_t m = std::min(kDominanceTile, end - at);
    const Coord* lane0 = base + at;
    for (size_t j = 0; j < m; ++j) {
      leq[j] = static_cast<uint8_t>(lane0[j] <= p0);
      lt[j] = static_cast<uint8_t>(lane0[j] < p0);
    }
    for (uint32_t k = 1; k < dim; ++k) {
      const Coord* lane = base + k * stride + at;
      const Coord pk = p[k];
      for (size_t j = 0; j < m; ++j) {
        leq[j] &= static_cast<uint8_t>(lane[j] <= pk);
        lt[j] |= static_cast<uint8_t>(lane[j] < pk);
      }
    }
    uint8_t any = 0;
    for (size_t j = 0; j < m; ++j) {
      any |= static_cast<uint8_t>(leq[j] & lt[j]);
    }
    if (any) return true;
  }
  return false;
}

size_t SoACountDominators(const Coord* base, size_t stride, uint32_t dim,
                          size_t begin, size_t end, std::span<const Coord> p) {
  ZSKY_DCHECK(p.size() == dim);
  uint8_t leq[kDominanceTile];
  uint8_t lt[kDominanceTile];
  size_t count = 0;
  const Coord p0 = p[0];
  for (size_t at = begin; at < end; at += kDominanceTile) {
    const size_t m = std::min(kDominanceTile, end - at);
    const Coord* lane0 = base + at;
    for (size_t j = 0; j < m; ++j) {
      leq[j] = static_cast<uint8_t>(lane0[j] <= p0);
      lt[j] = static_cast<uint8_t>(lane0[j] < p0);
    }
    for (uint32_t k = 1; k < dim; ++k) {
      const Coord* lane = base + k * stride + at;
      const Coord pk = p[k];
      for (size_t j = 0; j < m; ++j) {
        leq[j] &= static_cast<uint8_t>(lane[j] <= pk);
        lt[j] |= static_cast<uint8_t>(lane[j] < pk);
      }
    }
    for (size_t j = 0; j < m; ++j) {
      count += static_cast<size_t>(leq[j] & lt[j]);
    }
  }
  return count;
}

size_t SoAMarkDominatedBy(const Coord* base, size_t stride, uint32_t dim,
                          size_t begin, size_t end, std::span<const Coord> p,
                          uint8_t* out) {
  ZSKY_DCHECK(p.size() == dim);
  uint8_t geq[kDominanceTile];
  uint8_t gt[kDominanceTile];
  size_t count = 0;
  const Coord p0 = p[0];
  for (size_t at = begin; at < end; at += kDominanceTile) {
    const size_t m = std::min(kDominanceTile, end - at);
    const Coord* lane0 = base + at;
    for (size_t j = 0; j < m; ++j) {
      geq[j] = static_cast<uint8_t>(lane0[j] >= p0);
      gt[j] = static_cast<uint8_t>(lane0[j] > p0);
    }
    for (uint32_t k = 1; k < dim; ++k) {
      const Coord* lane = base + k * stride + at;
      const Coord pk = p[k];
      for (size_t j = 0; j < m; ++j) {
        geq[j] &= static_cast<uint8_t>(lane[j] >= pk);
        gt[j] |= static_cast<uint8_t>(lane[j] > pk);
      }
    }
    uint8_t* slab = out + (at - begin);
    for (size_t j = 0; j < m; ++j) {
      slab[j] = static_cast<uint8_t>(geq[j] & gt[j]);
      count += slab[j];
    }
  }
  return count;
}

void DominanceBlock::Regrow(size_t min_capacity) {
  size_t grown = std::max<size_t>(kDominanceTile, capacity_ * 2);
  while (grown < min_capacity) grown *= 2;
  std::vector<Coord> data(grown * dim_);
  for (uint32_t k = 0; k < dim_; ++k) {
    std::copy_n(data_.data() + k * capacity_, size_, data.data() + k * grown);
  }
  data_ = std::move(data);
  capacity_ = grown;
}

void DominanceBlock::Append(std::span<const Coord> p) {
  ZSKY_DCHECK(p.size() == dim_);
  if (size_ == capacity_) Regrow(size_ + 1);
  for (uint32_t k = 0; k < dim_; ++k) {
    data_[k * capacity_ + size_] = p[k];
  }
  ++size_;
}

void DominanceBlock::AppendAll(const PointSet& points) {
  ZSKY_DCHECK(points.dim() == dim_);
  Reserve(size_ + points.size());
  const size_t n = points.size();
  for (size_t i = 0; i < n; ++i) Append(points[i]);
}

size_t DominanceBlock::DominatedBitmap(std::span<const Coord> p,
                                       std::vector<uint8_t>& out) const {
  out.assign(size_, 0);
  if (size_ == 0) return 0;
  return SoAMarkDominatedBy(data_.data(), capacity_, dim_, 0, size_, p,
                            out.data());
}

void DominanceBlock::Remove(const std::vector<uint8_t>& flags) {
  ZSKY_DCHECK(flags.size() == size_);
  for (uint32_t k = 0; k < dim_; ++k) {
    Coord* lane = data_.data() + k * capacity_;
    size_t kept = 0;
    for (size_t i = 0; i < size_; ++i) {
      if (!flags[i]) lane[kept++] = lane[i];
    }
  }
  size_t kept = 0;
  for (size_t i = 0; i < size_; ++i) kept += flags[i] ? 0u : 1u;
  size_ = kept;
}

void DominanceBlock::CopyPoint(size_t i, std::span<Coord> out) const {
  ZSKY_DCHECK(i < size_ && out.size() == dim_);
  for (uint32_t k = 0; k < dim_; ++k) {
    out[k] = data_[k * capacity_ + i];
  }
}

}  // namespace zsky
