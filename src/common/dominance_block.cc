#include "common/dominance_block.h"

#include <algorithm>

#include "common/dominance_kernels.h"

namespace zsky {

namespace simd {

namespace {

constexpr KernelTable kScalarTable = {
    AnyDominatesScalar, CountDominatorsScalar, MarkDominatedByScalar};
constexpr KernelTable kSse42Table = {
    AnyDominatesSse42, CountDominatorsSse42, MarkDominatedBySse42};
constexpr KernelTable kAvx2Table = {
    AnyDominatesAvx2, CountDominatorsAvx2, MarkDominatedByAvx2};

}  // namespace

const KernelTable& KernelTableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return kScalarTable;
    case Isa::kSse42:
      return kSse42Table;
    case Isa::kAvx2:
      return kAvx2Table;
  }
  return kScalarTable;
}

const KernelTable& ActiveKernelTable() { return KernelTableFor(ActiveIsa()); }

}  // namespace simd

bool SoAAnyDominates(const Coord* base, size_t stride, uint32_t dim,
                     size_t begin, size_t end, std::span<const Coord> p) {
  ZSKY_DCHECK(p.size() == dim);
  return simd::ActiveKernelTable().any_dominates(base, stride, dim, begin,
                                                 end, p.data());
}

size_t SoACountDominators(const Coord* base, size_t stride, uint32_t dim,
                          size_t begin, size_t end, std::span<const Coord> p) {
  ZSKY_DCHECK(p.size() == dim);
  return simd::ActiveKernelTable().count_dominators(base, stride, dim, begin,
                                                    end, p.data());
}

size_t SoAMarkDominatedBy(const Coord* base, size_t stride, uint32_t dim,
                          size_t begin, size_t end, std::span<const Coord> p,
                          uint8_t* out) {
  ZSKY_DCHECK(p.size() == dim);
  return simd::ActiveKernelTable().mark_dominated_by(base, stride, dim, begin,
                                                     end, p.data(), out);
}

void DominanceBlock::Regrow(size_t min_capacity) {
  size_t grown = std::max<size_t>(kDominanceTile, capacity_ * 2);
  while (grown < min_capacity) grown *= 2;
  std::vector<Coord> data(grown * dim_);
  for (uint32_t k = 0; k < dim_; ++k) {
    std::copy_n(data_.data() + k * capacity_, size_, data.data() + k * grown);
  }
  data_ = std::move(data);
  capacity_ = grown;
}

void DominanceBlock::Append(std::span<const Coord> p) {
  ZSKY_DCHECK(p.size() == dim_);
  if (size_ == capacity_) Regrow(size_ + 1);
  for (uint32_t k = 0; k < dim_; ++k) {
    data_[k * capacity_ + size_] = p[k];
  }
  ++size_;
}

void DominanceBlock::AppendAll(const PointSet& points) {
  ZSKY_DCHECK(points.dim() == dim_);
  const size_t n = points.size();
  if (n == 0) return;
  Reserve(size_ + n);
  // One pass per lane: contiguous writes, fixed-stride reads from the
  // row-major source.
  const Coord* src = points.raw().data();
  for (uint32_t k = 0; k < dim_; ++k) {
    Coord* lane = data_.data() + k * capacity_ + size_;
    const Coord* in = src + k;
    for (size_t i = 0; i < n; ++i) {
      lane[i] = in[i * dim_];
    }
  }
  size_ += n;
}

size_t DominanceBlock::DominatedBitmap(std::span<const Coord> p,
                                       std::vector<uint8_t>& out) const {
  out.assign(size_, 0);
  if (size_ == 0) return 0;
  return SoAMarkDominatedBy(data_.data(), capacity_, dim_, 0, size_, p,
                            out.data());
}

void DominanceBlock::Remove(const std::vector<uint8_t>& flags) {
  ZSKY_DCHECK(flags.size() == size_);
  // Every lane's compaction produces the same kept count; keep the last.
  size_t kept = 0;
  for (uint32_t k = 0; k < dim_; ++k) {
    Coord* lane = data_.data() + k * capacity_;
    kept = 0;
    for (size_t i = 0; i < size_; ++i) {
      if (!flags[i]) lane[kept++] = lane[i];
    }
  }
  size_ = kept;
}

void DominanceBlock::CopyPoint(size_t i, std::span<Coord> out) const {
  ZSKY_DCHECK(i < size_ && out.size() == dim_);
  for (uint32_t k = 0; k < dim_; ++k) {
    out[k] = data_[k * capacity_ + i];
  }
}

}  // namespace zsky
