#include "common/dominance_block.h"

#include <algorithm>

#include "common/dominance_kernels.h"

namespace zsky {

namespace simd {

namespace {

constexpr KernelTable kScalarTable = {AnyDominatesScalar,
                                      CountDominatorsScalar,
                                      MarkDominatedByScalar,
                                      MaskAnyDominatedScalar};
constexpr KernelTable kSse42Table = {AnyDominatesSse42, CountDominatorsSse42,
                                     MarkDominatedBySse42,
                                     MaskAnyDominatedSse42};
constexpr KernelTable kAvx2Table = {AnyDominatesAvx2, CountDominatorsAvx2,
                                    MarkDominatedByAvx2, MaskAnyDominatedAvx2};

}  // namespace

const KernelTable& KernelTableFor(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return kScalarTable;
    case Isa::kSse42:
      return kSse42Table;
    case Isa::kAvx2:
      return kAvx2Table;
  }
  return kScalarTable;
}

const KernelTable& ActiveKernelTable() { return KernelTableFor(ActiveIsa()); }

}  // namespace simd

bool SoAAnyDominates(const Coord* base, size_t stride, uint32_t dim,
                     size_t begin, size_t end, std::span<const Coord> p) {
  ZSKY_DCHECK(p.size() == dim);
  return simd::ActiveKernelTable().any_dominates(base, stride, dim, begin,
                                                 end, p.data());
}

size_t SoACountDominators(const Coord* base, size_t stride, uint32_t dim,
                          size_t begin, size_t end, std::span<const Coord> p) {
  ZSKY_DCHECK(p.size() == dim);
  return simd::ActiveKernelTable().count_dominators(base, stride, dim, begin,
                                                    end, p.data());
}

size_t SoAMarkDominatedBy(const Coord* base, size_t stride, uint32_t dim,
                          size_t begin, size_t end, std::span<const Coord> p,
                          uint8_t* out) {
  ZSKY_DCHECK(p.size() == dim);
  return simd::ActiveKernelTable().mark_dominated_by(base, stride, dim, begin,
                                                     end, p.data(), out);
}

size_t SoAMaskAnyDominated(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* filt,
                           size_t filt_stride, size_t filt_size,
                           const simd::MaskFilterPruning* pruning,
                           uint8_t* out) {
  if (filt_size == 0) {
    std::fill_n(out, end - begin, uint8_t{0});
    return 0;
  }
  return simd::ActiveKernelTable().mask_any_dominated(
      base, stride, dim, begin, end, filt, filt_stride, filt_size, pruning,
      out);
}

namespace {

// Morton key of a point: coordinate bits interleaved MSB-first across
// dimensions, truncated to 64 bits. Only used to ORDER the filter copy —
// nearby keys mean componentwise-similar points, which keeps the tile
// minima tight — so truncation costs selectivity at worst, never
// correctness.
uint64_t MortonKey(const std::vector<Coord>& p, uint32_t dim) {
  uint64_t key = 0;
  uint32_t out_bits = 0;
  for (int b = 31; b >= 0 && out_bits < 64; --b) {
    for (uint32_t k = 0; k < dim && out_bits < 64; ++k) {
      key = (key << 1) | ((p[k] >> b) & 1u);
      ++out_bits;
    }
  }
  return key;
}

}  // namespace

MaskFilterIndex::MaskFilterIndex(const DominanceBlock& src)
    : block(src.dim()) {
  const size_t n = src.size();
  const uint32_t dim = src.dim();
  std::vector<std::pair<uint64_t, uint32_t>> order(n);
  std::vector<Coord> p(dim);
  for (size_t i = 0; i < n; ++i) {
    src.CopyPoint(i, p);
    order[i] = {MortonKey(p, dim), static_cast<uint32_t>(i)};
  }
  // The index tiebreak keeps the copy deterministic for equal keys.
  std::sort(order.begin(), order.end());
  block.Reserve(n);
  const size_t num_tiles =
      (n + simd::kMaskTilePoints - 1) / simd::kMaskTilePoints;
  const size_t num_supers =
      (num_tiles + simd::kMaskTilesPerSuper - 1) / simd::kMaskTilesPerSuper;
  // num_supers * kMaskTilesPerSuper == round_up(num_tiles, 8) — which makes
  // the 8-lane tile group of every supertile a full in-bounds load.
  tile_stride = num_supers * simd::kMaskTilesPerSuper;
  tile_mins.assign(tile_stride * dim, ~Coord{0});
  super_stride = (num_supers + 7) & ~size_t{7};
  super_mins.assign(super_stride * dim, ~Coord{0});
  for (size_t at = 0; at < n; ++at) {
    src.CopyPoint(order[at].second, p);
    block.Append(p);
    const size_t t = at / simd::kMaskTilePoints;
    const size_t s = t / simd::kMaskTilesPerSuper;
    for (uint32_t k = 0; k < dim; ++k) {
      Coord& m = tile_mins[k * tile_stride + t];
      m = std::min(m, p[k]);
      Coord& sm = super_mins[k * super_stride + s];
      sm = std::min(sm, p[k]);
    }
  }
}

void DominanceBlock::Regrow(size_t min_capacity) {
  size_t grown = std::max<size_t>(kDominanceTile, capacity_ * 2);
  while (grown < min_capacity) grown *= 2;
  std::vector<Coord> data(grown * dim_);
  for (uint32_t k = 0; k < dim_; ++k) {
    std::copy_n(data_.data() + k * capacity_, size_, data.data() + k * grown);
  }
  data_ = std::move(data);
  capacity_ = grown;
}

void DominanceBlock::Append(std::span<const Coord> p) {
  ZSKY_DCHECK(p.size() == dim_);
  if (size_ == capacity_) Regrow(size_ + 1);
  for (uint32_t k = 0; k < dim_; ++k) {
    data_[k * capacity_ + size_] = p[k];
  }
  ++size_;
}

void DominanceBlock::AppendAll(const PointSet& points) {
  ZSKY_DCHECK(points.dim() == dim_);
  const size_t n = points.size();
  if (n == 0) return;
  Reserve(size_ + n);
  // One pass per lane: contiguous writes, fixed-stride reads from the
  // row-major source.
  const Coord* src = points.raw().data();
  for (uint32_t k = 0; k < dim_; ++k) {
    Coord* lane = data_.data() + k * capacity_ + size_;
    const Coord* in = src + k;
    for (size_t i = 0; i < n; ++i) {
      lane[i] = in[i * dim_];
    }
  }
  size_ += n;
}

size_t DominanceBlock::DominatedBitmap(std::span<const Coord> p,
                                       std::vector<uint8_t>& out) const {
  out.assign(size_, 0);
  if (size_ == 0) return 0;
  return SoAMarkDominatedBy(data_.data(), capacity_, dim_, 0, size_, p,
                            out.data());
}

void DominanceBlock::Remove(const std::vector<uint8_t>& flags) {
  ZSKY_DCHECK(flags.size() == size_);
  // Every lane's compaction produces the same kept count; keep the last.
  size_t kept = 0;
  for (uint32_t k = 0; k < dim_; ++k) {
    Coord* lane = data_.data() + k * capacity_;
    kept = 0;
    for (size_t i = 0; i < size_; ++i) {
      if (!flags[i]) lane[kept++] = lane[i];
    }
  }
  size_ = kept;
}

void DominanceBlock::CopyPoint(size_t i, std::span<Coord> out) const {
  ZSKY_DCHECK(i < size_ && out.size() == dim_);
  for (uint32_t k = 0; k < dim_; ++k) {
    out[k] = data_[k * capacity_ + i];
  }
}

}  // namespace zsky
