#include "common/cpu.h"

#include <atomic>
#include <cstdlib>

#include "common/macros.h"

namespace zsky {

namespace {

CpuFeatures ProbeCpu() {
  CpuFeatures f;
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  __builtin_cpu_init();
  f.sse42 = __builtin_cpu_supports("sse4.2") != 0;
  f.avx2 = __builtin_cpu_supports("avx2") != 0;
  f.bmi2 = __builtin_cpu_supports("bmi2") != 0;
#endif
  return f;
}

Isa BestSupportedIsa() {
  const CpuFeatures& f = HostCpuFeatures();
  if (f.avx2) return Isa::kAvx2;
  if (f.sse42) return Isa::kSse42;
  return Isa::kScalar;
}

Isa ResolveInitialIsa() {
  const char* env = std::getenv("ZSKY_FORCE_ISA");
  if (env != nullptr && env[0] != '\0') {
    Isa isa;
    ZSKY_CHECK_MSG(ParseIsa(env, &isa),
                   "ZSKY_FORCE_ISA must be scalar, sse42 or avx2");
    ZSKY_CHECK_MSG(IsaSupported(isa),
                   "ZSKY_FORCE_ISA names an ISA this CPU does not support");
    return isa;
  }
  return BestSupportedIsa();
}

// -1 = not yet resolved; otherwise the cached Isa value.
std::atomic<int> g_active_isa{-1};

}  // namespace

const CpuFeatures& HostCpuFeatures() {
  static const CpuFeatures features = ProbeCpu();
  return features;
}

bool IsaSupported(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse42:
      return HostCpuFeatures().sse42;
    case Isa::kAvx2:
      return HostCpuFeatures().avx2;
  }
  return false;
}

Isa ActiveIsa() {
  int v = g_active_isa.load(std::memory_order_acquire);
  if (v < 0) {
    // Racing first calls all compute the same value; the store is
    // idempotent.
    const Isa isa = ResolveInitialIsa();
    g_active_isa.store(static_cast<int>(isa), std::memory_order_release);
    return isa;
  }
  return static_cast<Isa>(v);
}

void SetActiveIsa(Isa isa) {
  ZSKY_CHECK_MSG(IsaSupported(isa),
                 "SetActiveIsa: ISA not supported by this CPU");
  g_active_isa.store(static_cast<int>(isa), std::memory_order_release);
}

bool UseBmi2Codec() {
  return ActiveIsa() == Isa::kAvx2 && HostCpuFeatures().bmi2;
}

std::string_view IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse42:
      return "sse42";
    case Isa::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseIsa(std::string_view name, Isa* out) {
  if (name == "scalar") {
    *out = Isa::kScalar;
  } else if (name == "sse42") {
    *out = Isa::kSse42;
  } else if (name == "avx2") {
    *out = Isa::kAvx2;
  } else {
    return false;
  }
  return true;
}

}  // namespace zsky
