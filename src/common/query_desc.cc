#include "common/query_desc.h"

#include <algorithm>

#include "common/macros.h"

namespace zsky {

bool QueryDesc::has_flips() const {
  for (uint8_t f : maximize) {
    if (f != 0) return true;
  }
  return false;
}

void QueryDesc::Canonicalize() {
  std::sort(dims.begin(), dims.end());
  dims.erase(std::unique(dims.begin(), dims.end()), dims.end());
  if (!has_flips()) maximize.clear();
}

void QueryDesc::CheckValid(uint32_t dim) const {
  ZSKY_CHECK(k >= 1);
  ZSKY_CHECK(box_lo.size() == box_hi.size());
  if (has_box()) {
    ZSKY_CHECK(box_lo.size() == dim);
    for (uint32_t d = 0; d < dim; ++d) ZSKY_CHECK(box_lo[d] <= box_hi[d]);
  }
  ZSKY_CHECK(dims.size() <= dim);
  // Strictly ascending (Canonicalize() produces this); uniqueness matters —
  // a repeated dim would masquerade as a wider projection.
  for (size_t j = 0; j < dims.size(); ++j) {
    ZSKY_CHECK(dims[j] < dim);
    if (j > 0) ZSKY_CHECK(dims[j] > dims[j - 1]);
  }
  ZSKY_CHECK(maximize.empty() || maximize.size() == dim);
}

std::string QueryDesc::ShapeKey() const {
  std::string key = "k";
  key += std::to_string(k);
  key += "|d";
  for (uint32_t d : dims) {
    key += std::to_string(d);
    key += ',';
  }
  key += "|f";
  // An all-zero maximize is the same shape as an empty one; encode only
  // the set bits so the two spellings share a cache entry.
  for (size_t d = 0; d < maximize.size(); ++d) {
    if (maximize[d] != 0) {
      key += std::to_string(d);
      key += ',';
    }
  }
  return key;
}

std::vector<uint32_t> QueryDesc::EffectiveDims(uint32_t dim) const {
  if (!dims.empty()) return dims;
  std::vector<uint32_t> all(dim);
  for (uint32_t d = 0; d < dim; ++d) all[d] = d;
  return all;
}

std::vector<uint8_t> QueryDesc::EffectiveFlips(uint32_t dim) const {
  const std::vector<uint32_t> eff = EffectiveDims(dim);
  std::vector<uint8_t> flips(eff.size(), 0);
  if (!maximize.empty()) {
    for (size_t j = 0; j < eff.size(); ++j) flips[j] = maximize[eff[j]];
  }
  return flips;
}

}  // namespace zsky
