#ifndef ZSKY_COMMON_DOMINANCE_KERNELS_H_
#define ZSKY_COMMON_DOMINANCE_KERNELS_H_

#include <cstdint>

#include "common/cpu.h"
#include "common/point_set.h"

// Per-ISA implementations of the three block dominance primitives and the
// function-pointer table the public SoA* wrappers (dominance_block.h)
// dispatch through. Each ISA lives in its own translation unit so the
// vector variants can be compiled with -msse4.2 / -mavx2 without those
// flags leaking into the rest of the build:
//
//   dominance_kernels_scalar.cc  portable C++ (the PR-1 tile kernels)
//   dominance_kernels_sse42.cc   128-bit __m128i kernels
//   dominance_kernels_avx2.cc    256-bit __m256i kernels
//
// When the compiler cannot target an ISA, that TU compiles forwarding
// stubs to the scalar kernels instead — the build always succeeds, and
// runtime dispatch never selects a tier the *hardware* lacks anyway.
//
// All variants return bit-identical results for the same inputs: the
// primitives' outputs (a bool, a count, a 0/1 bitmap) are fully
// determined by the point data, independent of tile width or early-exit
// granularity. Enforced by tests/simd_dispatch_test.cc and by
// `scripts/check.sh simd` (whole-suite runs under each ZSKY_FORCE_ISA).

namespace zsky::simd {

// Signatures mirror the SoA* wrappers in dominance_block.h, with the
// probe passed as a raw pointer of `dim` coordinates.
using AnyDominatesFn = bool (*)(const Coord* base, size_t stride,
                                uint32_t dim, size_t begin, size_t end,
                                const Coord* p);
using CountDominatorsFn = size_t (*)(const Coord* base, size_t stride,
                                     uint32_t dim, size_t begin, size_t end,
                                     const Coord* p);
using MarkDominatedByFn = size_t (*)(const Coord* base, size_t stride,
                                     uint32_t dim, size_t begin, size_t end,
                                     const Coord* p, uint8_t* out);
// The columnar-direct map-wave primitive: both operands are SoA. For each
// wave row i in [begin, end), sets out[i - begin] to 1 iff some point of
// the filter block (filt, filt_stride, filt_size) strictly dominates it;
// returns the number of dominated rows. Equivalent to running
// MarkDominatedBy once per filter point and OR-ing the bitmaps, which is
// why every tier produces bit-identical output regardless of early exits.
//
// Min-pruning metadata for the mask kernel (built by MaskFilterIndex in
// dominance_block.h). The filter is grouped into tiles of kMaskTilePoints
// consecutive points and supertiles of kMaskTilesPerSuper consecutive
// tiles; `tile_mins` / `super_mins` hold the per-dimension minimum of
// each, SoA like the filter itself (the min of dimension k for tile t
// lives at tile_mins[k * tile_stride + t]). A tile (or supertile) can
// contain a dominator of row p only if its min is <= p in EVERY dimension
// — a dominator q satisfies q <= p componentwise and the min is <= q —
// so groups failing the test are skipped without touching their points.
// Rows no filter point dominates are the expensive case (they otherwise
// scan the whole block to prove the miss) and reject almost every
// supertile this way when the tiles are spatially clustered. Pruning
// never skips a group that holds a dominator, so output stays
// bit-identical with and without it.
//
// Both strides are padded to a multiple of 8 lanes and padding lanes hold
// ~0u: vector tiers may sweep whole 8-lane groups without bounds checks —
// a padding lane never passes the min test (and its scan range would be
// empty anyway).
struct MaskFilterPruning {
  const Coord* tile_mins;
  size_t tile_stride;
  const Coord* super_mins;
  size_t super_stride;
};

using MaskAnyDominatedFn = size_t (*)(const Coord* base, size_t stride,
                                      uint32_t dim, size_t begin, size_t end,
                                      const Coord* filt, size_t filt_stride,
                                      size_t filt_size,
                                      const MaskFilterPruning* pruning,
                                      uint8_t* out);

// Filter points per tile / tiles per supertile of the min-pruning index.
inline constexpr size_t kMaskTilePoints = 8;
inline constexpr size_t kMaskTilesPerSuper = 8;

struct KernelTable {
  AnyDominatesFn any_dominates;
  CountDominatorsFn count_dominators;
  MarkDominatedByFn mark_dominated_by;
  MaskAnyDominatedFn mask_any_dominated;
};

// The table for one tier (for tests/benches that pin a tier in-process).
const KernelTable& KernelTableFor(Isa isa);

// The table for ActiveIsa(); what the SoA* wrappers use.
const KernelTable& ActiveKernelTable();

// Vector kernels keep the sign-flipped probe in a fixed stack buffer;
// probes wider than this fall back to the scalar kernel (dominance tests
// at such dimensionality are region-pruned long before the inner loops
// matter).
inline constexpr uint32_t kMaxVectorDim = 64;

bool AnyDominatesScalar(const Coord* base, size_t stride, uint32_t dim,
                        size_t begin, size_t end, const Coord* p);
size_t CountDominatorsScalar(const Coord* base, size_t stride, uint32_t dim,
                             size_t begin, size_t end, const Coord* p);
size_t MarkDominatedByScalar(const Coord* base, size_t stride, uint32_t dim,
                             size_t begin, size_t end, const Coord* p,
                             uint8_t* out);
size_t MaskAnyDominatedScalar(const Coord* base, size_t stride, uint32_t dim,
                              size_t begin, size_t end, const Coord* filt,
                              size_t filt_stride, size_t filt_size,
                              const MaskFilterPruning* pruning,
                              uint8_t* out);

bool AnyDominatesSse42(const Coord* base, size_t stride, uint32_t dim,
                       size_t begin, size_t end, const Coord* p);
size_t CountDominatorsSse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p);
size_t MarkDominatedBySse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p,
                            uint8_t* out);
size_t MaskAnyDominatedSse42(const Coord* base, size_t stride, uint32_t dim,
                             size_t begin, size_t end, const Coord* filt,
                             size_t filt_stride, size_t filt_size,
                             const MaskFilterPruning* pruning,
                             uint8_t* out);

bool AnyDominatesAvx2(const Coord* base, size_t stride, uint32_t dim,
                      size_t begin, size_t end, const Coord* p);
size_t CountDominatorsAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p);
size_t MarkDominatedByAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p,
                           uint8_t* out);
size_t MaskAnyDominatedAvx2(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* filt,
                            size_t filt_stride, size_t filt_size,
                            const MaskFilterPruning* pruning,
                            uint8_t* out);

}  // namespace zsky::simd

#endif  // ZSKY_COMMON_DOMINANCE_KERNELS_H_
