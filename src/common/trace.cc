#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace zsky::trace {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::time_point TraceEpoch() {
  static const SteadyClock::time_point epoch = SteadyClock::now();
  return epoch;
}

// Escapes a string for embedding inside a JSON string literal. Names are
// library-controlled literals, but args may carry arbitrary labels.
void AppendEscaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer(size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {
  // TraceEpoch() is pinned on first use; touch it here so timestamps of
  // spans recorded before the first NowNs() are still relative to startup.
  (void)TraceEpoch();
}

Tracer& Tracer::Global() {
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    const char* env = std::getenv("ZSKY_TRACE");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      t->SetEnabled(true);
    }
    return t;
  }();
  return *tracer;
}

void Tracer::SetCapacity(size_t capacity) {
  const std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
}

void Tracer::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
}

void Tracer::RecordLocked(Span span) {
  const std::lock_guard<std::mutex> lock(mu_);
  span.seq = head_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(span));
  } else {
    ring_[head_ % capacity_] = std::move(span);
  }
  ++head_;
}

void Tracer::RecordComplete(std::string name, uint64_t start_ns,
                            uint64_t dur_ns, std::string args) {
  Span span;
  span.name = std::move(name);
  span.args = std::move(args);
  span.tid = CurrentThreadId();
  span.phase = 'X';
  span.start_ns = start_ns;
  span.dur_ns = dur_ns;
  RecordLocked(std::move(span));
}

void Tracer::RecordInstant(std::string name, std::string args) {
  Span span;
  span.name = std::move(name);
  span.args = std::move(args);
  span.tid = CurrentThreadId();
  span.phase = 'i';
  span.start_ns = NowNs();
  span.dur_ns = 0;
  RecordLocked(std::move(span));
}

size_t Tracer::recorded() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

size_t Tracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return head_ > ring_.size() ? head_ - ring_.size() : 0;
}

std::vector<Span> Tracer::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // The oldest surviving span is head_ - size; walk the ring in seq order.
  const uint64_t oldest = head_ - ring_.size();
  for (uint64_t seq = oldest; seq < head_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

std::string Tracer::ChromeTraceJson() const {
  const std::vector<Span> spans = Snapshot();
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buffer[64];
  for (const Span& span : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(out, span.name);
    out += "\",\"ph\":\"";
    out += span.phase;
    out += '"';
    // Chrome expects microsecond timestamps; keep sub-us resolution.
    std::snprintf(buffer, sizeof(buffer), ",\"ts\":%.3f",
                  static_cast<double>(span.start_ns) / 1000.0);
    out += buffer;
    if (span.phase == 'X') {
      std::snprintf(buffer, sizeof(buffer), ",\"dur\":%.3f",
                    static_cast<double>(span.dur_ns) / 1000.0);
      out += buffer;
    } else {
      // Instant scope: "t" = thread-scoped.
      out += ",\"s\":\"t\"";
    }
    std::snprintf(buffer, sizeof(buffer), ",\"pid\":1,\"tid\":%u", span.tid);
    out += buffer;
    if (!span.args.empty()) {
      out += ",\"args\":";
      out += span.args;  // Already a JSON object.
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) return false;
  const std::string json = ChromeTraceJson();
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  return written == json.size();
}

uint64_t Tracer::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(SteadyClock::now() -
                                                           TraceEpoch())
          .count());
}

uint32_t Tracer::CurrentThreadId() {
  static std::atomic<uint32_t> next_tid{1};
  thread_local const uint32_t tid =
      next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace zsky::trace
