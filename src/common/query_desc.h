#ifndef ZSKY_COMMON_QUERY_DESC_H_
#define ZSKY_COMMON_QUERY_DESC_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/point_set.h"

namespace zsky {

// Describes one skyline query variant: the standard production surface of
// a skyline service beyond the plain full-space query (constrained,
// subspace, direction-flipped, k-skyband — and any combination).
//
// The desc splits into two kinds of state with very different costs:
//
//  - The *shape* (dims, maximize, k): reshapes derived plan artifacts.
//    A dimension subset or direction flip re-derives the Z-order codec
//    over the projected dims (direction is realized by flipping
//    coordinates to max_coord - c at encode time, which preserves the
//    minimization convention and therefore Z-order's dominance
//    monotonicity); k > 1 swaps the sample-skyline mapper filter for a
//    sample-k-band counting filter. Shapes are cached per plan
//    (PreparedPlan::Variant) keyed by ShapeKey().
//
//  - The *constraint box* (box_lo/box_hi): pure per-query state. It never
//    invalidates any cached artifact — the pipeline derives an in-box
//    sample filter and RZ-region prune table at query time. This is the
//    warm-path invariant: two queries differing only in the box share the
//    plan AND the variant.
struct QueryDesc {
  // Inclusive constraint box in ORIGINAL coordinates (all dims, before
  // projection/flip — "price <= 200" keeps meaning price even when the
  // skyline runs over other dims). Both empty (unconstrained) or both of
  // size dim.
  std::vector<Coord> box_lo;
  std::vector<Coord> box_hi;

  // Subspace: the original dimensions dominance is computed over. Empty =
  // all dims. Canonicalize() sorts and dedups.
  std::vector<uint32_t> dims;

  // Per-ORIGINAL-dimension direction: non-zero = larger-is-better for that
  // dimension. Empty = all minimize (the library convention).
  std::vector<uint8_t> maximize;

  // k-skyband: keep points with fewer than k dominators. 1 = skyline.
  uint32_t k = 1;

  bool has_box() const { return !box_lo.empty(); }
  bool has_dims() const { return !dims.empty(); }
  bool has_flips() const;

  // True iff this is the plain full-space minimizing skyline — the
  // pipeline's untouched fast path.
  bool IsDefault() const {
    return !has_box() && IsIdentityShape();
  }

  // True iff the shape (everything but the box) is the identity: all dims,
  // no flips, k == 1. Identity shapes reuse the base plan's artifacts
  // outright.
  bool IsIdentityShape() const {
    return !has_dims() && !has_flips() && k == 1;
  }

  // Sorts/dedups dims and drops an all-zero maximize vector; call once
  // after filling the fields by hand (the CLI and tests do).
  void Canonicalize();

  // Aborts (ZSKY_CHECK) unless the desc is well-formed for `dim`-dimensional
  // data: box sides match dim with lo <= hi, dims in range, maximize either
  // empty or of size dim, k >= 1.
  void CheckValid(uint32_t dim) const;

  // Canonical cache key of the shape — dims, flips, k; deliberately NOT
  // the box. Equal keys must reuse the same cached plan variant.
  std::string ShapeKey() const;

  // Inclusive box membership of an original-space point (true when no box).
  bool InBox(std::span<const Coord> p) const {
    for (size_t d = 0; d < box_lo.size(); ++d) {
      if (p[d] < box_lo[d] || p[d] > box_hi[d]) return false;
    }
    return true;
  }

  // The selected dims as an explicit ascending list over `dim` dimensions
  // (fills in "all" when dims is empty).
  std::vector<uint32_t> EffectiveDims(uint32_t dim) const;

  // Per-SELECTED-dimension flip flags, parallel to EffectiveDims(dim).
  std::vector<uint8_t> EffectiveFlips(uint32_t dim) const;
};

}  // namespace zsky

#endif  // ZSKY_COMMON_QUERY_DESC_H_
