#include "common/quantizer.h"

#include <algorithm>

#include "common/macros.h"

namespace zsky {

Quantizer::Quantizer(uint32_t bits) : bits_(bits) {
  ZSKY_CHECK(bits >= 1 && bits <= 32);
  max_value_ = (bits == 32) ? 0xFFFFFFFFu : ((Coord{1} << bits) - 1);
  scale_ = static_cast<double>(max_value_) + 1.0;
}

Coord Quantizer::Quantize(double v) const {
  if (v < 0.0) v = 0.0;
  if (v >= 1.0) return max_value_;
  auto c = static_cast<Coord>(v * scale_);
  return std::min(c, max_value_);
}

PointSet Quantizer::QuantizeAll(std::span<const double> values,
                                uint32_t dim) const {
  ZSKY_CHECK(dim >= 1 && values.size() % dim == 0);
  PointSet out(dim);
  out.Reserve(values.size() / dim);
  std::vector<Coord> row(dim);
  for (size_t i = 0; i < values.size(); i += dim) {
    for (uint32_t k = 0; k < dim; ++k) row[k] = Quantize(values[i + k]);
    out.Append(row);
  }
  return out;
}

double Quantizer::Dequantize(Coord c) const {
  return (static_cast<double>(c) + 0.5) / scale_;
}

}  // namespace zsky
