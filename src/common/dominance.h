#ifndef ZSKY_COMMON_DOMINANCE_H_
#define ZSKY_COMMON_DOMINANCE_H_

#include <span>

#include "common/point_set.h"

namespace zsky {

// Dominance under the minimization convention: `p` dominates `q` iff
// p[i] <= q[i] for every dimension and p[i] < q[i] for at least one.
bool Dominates(std::span<const Coord> p, std::span<const Coord> q);

// Weak dominance: p[i] <= q[i] for every dimension (p == q qualifies).
// This is the test used for RZ-region reasoning where bounds, not actual
// points, are compared.
bool DominatesOrEqual(std::span<const Coord> p, std::span<const Coord> q);

// True iff neither point dominates the other and they are not equal.
bool Incomparable(std::span<const Coord> p, std::span<const Coord> q);

}  // namespace zsky

#endif  // ZSKY_COMMON_DOMINANCE_H_
