// AVX2 dominance kernels: 8 points per __m256i, unsigned compares via the
// sign-flip trick (x < y unsigned  <=>  (x ^ MIN) < (y ^ MIN) signed).
// Only this TU is compiled with -mavx2; without compiler support it
// degrades to forwarding stubs (and runtime dispatch is hardware-gated
// regardless).

#include "common/dominance_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <bit>

namespace zsky::simd {

namespace {

// Sign-flips the probe into `pf` so signed compares order unsigned
// coordinates. Returns false when the probe is too wide for the buffer.
inline bool FlipProbe(const Coord* p, uint32_t dim, int32_t* pf) {
  if (dim > kMaxVectorDim) return false;
  for (uint32_t k = 0; k < dim; ++k) {
    pf[k] = static_cast<int32_t>(p[k] ^ 0x80000000u);
  }
  return true;
}

}  // namespace

bool AnyDominatesAvx2(const Coord* base, size_t stride, uint32_t dim,
                      size_t begin, size_t end, const Coord* p) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return AnyDominatesScalar(base, stride, dim, begin, end, p);
  }
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  size_t at = begin;
  for (; at + 8 <= end; at += 8) {
    __m256i leq = _mm256_set1_epi32(-1);
    __m256i lt = _mm256_setzero_si256();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + k * stride + at)),
          sign);
      const __m256i pk = _mm256_set1_epi32(pf[k]);
      leq = _mm256_andnot_si256(_mm256_cmpgt_epi32(v, pk), leq);
      lt = _mm256_or_si256(lt, _mm256_cmpgt_epi32(pk, v));
      // No lane still <= the probe on every dimension seen: the whole
      // group is out, skip its remaining dimensions.
      if (_mm256_testz_si256(leq, leq)) break;
    }
    if (!_mm256_testz_si256(leq, lt)) return true;
  }
  return at < end && AnyDominatesScalar(base, stride, dim, at, end, p);
}

size_t CountDominatorsAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return CountDominatorsScalar(base, stride, dim, begin, end, p);
  }
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  size_t count = 0;
  size_t at = begin;
  for (; at + 8 <= end; at += 8) {
    __m256i leq = _mm256_set1_epi32(-1);
    __m256i lt = _mm256_setzero_si256();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + k * stride + at)),
          sign);
      const __m256i pk = _mm256_set1_epi32(pf[k]);
      leq = _mm256_andnot_si256(_mm256_cmpgt_epi32(v, pk), leq);
      lt = _mm256_or_si256(lt, _mm256_cmpgt_epi32(pk, v));
      if (_mm256_testz_si256(leq, leq)) break;
    }
    const __m256i dom = _mm256_and_si256(leq, lt);
    count += static_cast<size_t>(std::popcount(static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(dom)))));
  }
  if (at < end) {
    count += CountDominatorsScalar(base, stride, dim, at, end, p);
  }
  return count;
}

size_t MarkDominatedByAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p,
                           uint8_t* out) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return MarkDominatedByScalar(base, stride, dim, begin, end, p, out);
  }
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  size_t count = 0;
  size_t at = begin;
  for (; at + 8 <= end; at += 8) {
    // Reversed orientation: flag stored points the probe dominates.
    __m256i geq = _mm256_set1_epi32(-1);
    __m256i gt = _mm256_setzero_si256();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + k * stride + at)),
          sign);
      const __m256i pk = _mm256_set1_epi32(pf[k]);
      geq = _mm256_andnot_si256(_mm256_cmpgt_epi32(pk, v), geq);
      gt = _mm256_or_si256(gt, _mm256_cmpgt_epi32(v, pk));
      if (_mm256_testz_si256(geq, geq)) break;
    }
    const uint32_t mask = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_and_si256(geq, gt))));
    uint8_t* slab = out + (at - begin);
    for (uint32_t b = 0; b < 8; ++b) {
      slab[b] = static_cast<uint8_t>((mask >> b) & 1u);
    }
    count += static_cast<size_t>(std::popcount(mask));
  }
  if (at < end) {
    count += MarkDominatedByScalar(base, stride, dim, at, end, p,
                                   out + (at - begin));
  }
  return count;
}

}  // namespace zsky::simd

#else  // !defined(__AVX2__)

namespace zsky::simd {

bool AnyDominatesAvx2(const Coord* base, size_t stride, uint32_t dim,
                      size_t begin, size_t end, const Coord* p) {
  return AnyDominatesScalar(base, stride, dim, begin, end, p);
}

size_t CountDominatorsAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p) {
  return CountDominatorsScalar(base, stride, dim, begin, end, p);
}

size_t MarkDominatedByAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p,
                           uint8_t* out) {
  return MarkDominatedByScalar(base, stride, dim, begin, end, p, out);
}

}  // namespace zsky::simd

#endif  // defined(__AVX2__)
