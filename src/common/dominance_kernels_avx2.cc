// AVX2 dominance kernels: 8 points per __m256i, unsigned compares via the
// sign-flip trick (x < y unsigned  <=>  (x ^ MIN) < (y ^ MIN) signed).
// Only this TU is compiled with -mavx2; without compiler support it
// degrades to forwarding stubs (and runtime dispatch is hardware-gated
// regardless).

#include "common/dominance_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <bit>

namespace zsky::simd {

namespace {

// Sign-flips the probe into `pf` so signed compares order unsigned
// coordinates. Returns false when the probe is too wide for the buffer.
inline bool FlipProbe(const Coord* p, uint32_t dim, int32_t* pf) {
  if (dim > kMaxVectorDim) return false;
  for (uint32_t k = 0; k < dim; ++k) {
    pf[k] = static_cast<int32_t>(p[k] ^ 0x80000000u);
  }
  return true;
}

}  // namespace

bool AnyDominatesAvx2(const Coord* base, size_t stride, uint32_t dim,
                      size_t begin, size_t end, const Coord* p) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return AnyDominatesScalar(base, stride, dim, begin, end, p);
  }
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  size_t at = begin;
  for (; at + 8 <= end; at += 8) {
    __m256i leq = _mm256_set1_epi32(-1);
    __m256i lt = _mm256_setzero_si256();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + k * stride + at)),
          sign);
      const __m256i pk = _mm256_set1_epi32(pf[k]);
      leq = _mm256_andnot_si256(_mm256_cmpgt_epi32(v, pk), leq);
      lt = _mm256_or_si256(lt, _mm256_cmpgt_epi32(pk, v));
      // No lane still <= the probe on every dimension seen: the whole
      // group is out, skip its remaining dimensions.
      if (_mm256_testz_si256(leq, leq)) break;
    }
    if (!_mm256_testz_si256(leq, lt)) return true;
  }
  return at < end && AnyDominatesScalar(base, stride, dim, at, end, p);
}

size_t CountDominatorsAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return CountDominatorsScalar(base, stride, dim, begin, end, p);
  }
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  size_t count = 0;
  size_t at = begin;
  for (; at + 8 <= end; at += 8) {
    __m256i leq = _mm256_set1_epi32(-1);
    __m256i lt = _mm256_setzero_si256();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + k * stride + at)),
          sign);
      const __m256i pk = _mm256_set1_epi32(pf[k]);
      leq = _mm256_andnot_si256(_mm256_cmpgt_epi32(v, pk), leq);
      lt = _mm256_or_si256(lt, _mm256_cmpgt_epi32(pk, v));
      if (_mm256_testz_si256(leq, leq)) break;
    }
    const __m256i dom = _mm256_and_si256(leq, lt);
    count += static_cast<size_t>(std::popcount(static_cast<uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(dom)))));
  }
  if (at < end) {
    count += CountDominatorsScalar(base, stride, dim, at, end, p);
  }
  return count;
}

size_t MarkDominatedByAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p,
                           uint8_t* out) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return MarkDominatedByScalar(base, stride, dim, begin, end, p, out);
  }
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  size_t count = 0;
  size_t at = begin;
  for (; at + 8 <= end; at += 8) {
    // Reversed orientation: flag stored points the probe dominates.
    __m256i geq = _mm256_set1_epi32(-1);
    __m256i gt = _mm256_setzero_si256();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m256i v = _mm256_xor_si256(
          _mm256_loadu_si256(
              reinterpret_cast<const __m256i*>(base + k * stride + at)),
          sign);
      const __m256i pk = _mm256_set1_epi32(pf[k]);
      geq = _mm256_andnot_si256(_mm256_cmpgt_epi32(pk, v), geq);
      gt = _mm256_or_si256(gt, _mm256_cmpgt_epi32(v, pk));
      if (_mm256_testz_si256(geq, geq)) break;
    }
    const uint32_t mask = static_cast<uint32_t>(_mm256_movemask_ps(
        _mm256_castsi256_ps(_mm256_and_si256(geq, gt))));
    uint8_t* slab = out + (at - begin);
    for (uint32_t b = 0; b < 8; ++b) {
      slab[b] = static_cast<uint8_t>((mask >> b) & 1u);
    }
    count += static_cast<size_t>(std::popcount(mask));
  }
  if (at < end) {
    count += MarkDominatedByScalar(base, stride, dim, at, end, p,
                                   out + (at - begin));
  }
  return count;
}

size_t MaskAnyDominatedAvx2(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* filt,
                            size_t filt_stride, size_t filt_size,
                            const MaskFilterPruning* pruning, uint8_t* out) {
  if (dim > kMaxVectorDim) {
    return MaskAnyDominatedScalar(base, stride, dim, begin, end, filt,
                                  filt_stride, filt_size, pruning, out);
  }
  // Per-row orientation: gather the row straight out of the SoA columns
  // (no transpose buffer), then scan the filter with the AnyDominates
  // structure, which compares the row against 8 filter points per op and
  // exits at the first dominator — dominated rows retire within a vector
  // or two. Undominated rows are the expensive case (a full-block proof);
  // with `pruning` the supertile min-check runs first, 8 supertiles per
  // vector op, then the 8 tiles of each qualifying supertile get one more
  // vector min-check, and only tiles whose min is <= the row in every
  // dimension get their points scanned.
  // The alternative orientation (pin an 8-row wave group in registers and
  // stream filter points past it with set1 broadcasts) does ~dim× more
  // vector work per (row, filter) pair and can only exit once ALL eight
  // rows are dominated; it measured ~3× slower end to end.
  static_assert(kMaskTilesPerSuper == 8,
                "supertile tile group must fill one __m256i");
  Coord row[kMaxVectorDim];
  int32_t pf[kMaxVectorDim];
  const __m256i sign = _mm256_set1_epi32(INT32_MIN);
  const size_t num_tiles =
      (filt_size + kMaskTilePoints - 1) / kMaskTilePoints;
  const size_t num_supers =
      (num_tiles + kMaskTilesPerSuper - 1) / kMaskTilesPerSuper;
  size_t count = 0;
  for (size_t i = begin; i < end; ++i) {
    for (uint32_t k = 0; k < dim; ++k) {
      row[k] = base[k * stride + i];
      pf[k] = static_cast<int32_t>(row[k] ^ 0x80000000u);
    }
    bool dom = false;
    if (pruning != nullptr) {
      for (size_t sg = 0; sg < num_supers && !dom; sg += 8) {
        // 8 supertiles at once: a lane stays set while its supertile min
        // is <= the row on every dimension seen so far. The group load is
        // always in-bounds (super_stride is padded to a multiple of 8).
        __m256i smay = _mm256_set1_epi32(-1);
        for (uint32_t k = 0; k < dim; ++k) {
          const __m256i mins = _mm256_xor_si256(
              _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                  pruning->super_mins + k * pruning->super_stride + sg)),
              sign);
          const __m256i pk = _mm256_set1_epi32(pf[k]);
          smay = _mm256_andnot_si256(_mm256_cmpgt_epi32(mins, pk), smay);
          if (_mm256_testz_si256(smay, smay)) break;
        }
        uint32_t sm = static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(smay)));
        // An all-max row qualifies the ~0u padding lanes too; drop them —
        // their tile groups sit past the end of tile_mins.
        if (num_supers - sg < 8) sm &= (1u << (num_supers - sg)) - 1u;
        while (sm != 0 && !dom) {
          const size_t s = sg + static_cast<size_t>(std::countr_zero(sm));
          sm &= sm - 1;
          // The supertile's 8 tiles in one vector min-check; in-bounds by
          // the tile_stride == num_supers * kMaskTilesPerSuper invariant.
          const size_t tbase = s * kMaskTilesPerSuper;
          __m256i may = _mm256_set1_epi32(-1);
          for (uint32_t k = 0; k < dim; ++k) {
            const __m256i mins = _mm256_xor_si256(
                _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                    pruning->tile_mins + k * pruning->tile_stride + tbase)),
                sign);
            const __m256i pk = _mm256_set1_epi32(pf[k]);
            may = _mm256_andnot_si256(_mm256_cmpgt_epi32(mins, pk), may);
            if (_mm256_testz_si256(may, may)) break;
          }
          uint32_t qm = static_cast<uint32_t>(
              _mm256_movemask_ps(_mm256_castsi256_ps(may)));
          while (qm != 0 && !dom) {
            const size_t t = tbase + static_cast<size_t>(std::countr_zero(qm));
            qm &= qm - 1;
            const size_t t0 = t * kMaskTilePoints;
            const size_t t1 = std::min(filt_size, t0 + kMaskTilePoints);
            // A qualifying padding tile (possible for the same all-max
            // rows) has an empty range; skip it.
            if (t0 < t1) {
              dom = AnyDominatesAvx2(filt, filt_stride, dim, t0, t1, row);
            }
          }
        }
      }
    } else {
      dom = AnyDominatesAvx2(filt, filt_stride, dim, 0, filt_size, row);
    }
    out[i - begin] = static_cast<uint8_t>(dom);
    count += static_cast<size_t>(dom);
  }
  return count;
}

}  // namespace zsky::simd

#else  // !defined(__AVX2__)

namespace zsky::simd {

bool AnyDominatesAvx2(const Coord* base, size_t stride, uint32_t dim,
                      size_t begin, size_t end, const Coord* p) {
  return AnyDominatesScalar(base, stride, dim, begin, end, p);
}

size_t CountDominatorsAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p) {
  return CountDominatorsScalar(base, stride, dim, begin, end, p);
}

size_t MarkDominatedByAvx2(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* p,
                           uint8_t* out) {
  return MarkDominatedByScalar(base, stride, dim, begin, end, p, out);
}

size_t MaskAnyDominatedAvx2(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* filt,
                            size_t filt_stride, size_t filt_size,
                            const MaskFilterPruning* pruning, uint8_t* out) {
  return MaskAnyDominatedScalar(base, stride, dim, begin, end, filt,
                                filt_stride, filt_size, pruning, out);
}

}  // namespace zsky::simd

#endif  // defined(__AVX2__)
