#include "common/dominance.h"

namespace zsky {

bool Dominates(std::span<const Coord> p, std::span<const Coord> q) {
  ZSKY_DCHECK(p.size() == q.size());
  bool strict = false;
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] > q[i]) return false;
    if (p[i] < q[i]) strict = true;
  }
  return strict;
}

bool DominatesOrEqual(std::span<const Coord> p, std::span<const Coord> q) {
  ZSKY_DCHECK(p.size() == q.size());
  for (size_t i = 0; i < p.size(); ++i) {
    if (p[i] > q[i]) return false;
  }
  return true;
}

bool Incomparable(std::span<const Coord> p, std::span<const Coord> q) {
  return !DominatesOrEqual(p, q) && !DominatesOrEqual(q, p);
}

}  // namespace zsky
