#ifndef ZSKY_COMMON_CPU_H_
#define ZSKY_COMMON_CPU_H_

#include <cstdint>
#include <string_view>

namespace zsky {

// Instruction-set tiers the dominance kernels are compiled for. Each tier
// is a strict superset of the previous one on real hardware; the runtime
// dispatcher picks the highest supported tier once per process.
enum class Isa : uint8_t {
  kScalar = 0,  // Portable C++ (auto-vectorized at baseline arch flags).
  kSse42 = 1,   // 128-bit vector kernels (Nehalem+).
  kAvx2 = 2,    // 256-bit vector kernels (Haswell+); enables the BMI2
                // pdep/pext Z-order codec when the CPU has BMI2.
};

// CPU capabilities relevant to the kernels, probed once via cpuid.
struct CpuFeatures {
  bool sse42 = false;
  bool avx2 = false;
  bool bmi2 = false;
};

// Probed hardware features (cached; never affected by overrides).
const CpuFeatures& HostCpuFeatures();

// True iff the host can execute kernels of `isa` (kScalar always can).
bool IsaSupported(Isa isa);

// The ISA the dispatcher currently selects. Resolution order:
//   1. SetActiveIsa() override, if one was installed;
//   2. the ZSKY_FORCE_ISA environment variable ("scalar" | "sse42" |
//      "avx2"; fatal if unknown or unsupported by the host);
//   3. the highest tier in HostCpuFeatures().
// The choice is cached after the first call; only SetActiveIsa changes it.
Isa ActiveIsa();

// Programmatic override for ablation benchmarks and parity tests. Fatal
// if the host cannot execute `isa`. Takes effect for subsequent
// ActiveIsa() calls and for codecs constructed afterwards; not meant to
// be called while kernels are running on other threads.
void SetActiveIsa(Isa isa);

// True iff ZOrderCodec instances constructed now should use the BMI2
// pdep/pext fast path: the host has BMI2 and the active tier is kAvx2
// (the scalar/sse42 tiers model pre-Haswell machines, which lack BMI2,
// so forcing them also forces the scalar codec).
bool UseBmi2Codec();

// "scalar" / "sse42" / "avx2".
std::string_view IsaName(Isa isa);

// Parses an ISA name; returns false on unknown input.
bool ParseIsa(std::string_view name, Isa* out);

}  // namespace zsky

#endif  // ZSKY_COMMON_CPU_H_
