#ifndef ZSKY_COMMON_TRACE_H_
#define ZSKY_COMMON_TRACE_H_

// Low-overhead span tracing for the skyline pipeline.
//
// The tracer records `{name, tid, start_ns, dur_ns, args}` spans into a
// bounded ring buffer (oldest spans are overwritten once the buffer is
// full) and exports them in Chrome trace_event JSON, loadable in
// chrome://tracing or https://ui.perfetto.dev. Span call sites use the
// RAII macros below:
//
//   void MapTask(size_t task) {
//     ZSKY_TRACE_SPAN("mr.map_task");          // span = lifetime of scope
//     ...
//   }
//
// Three switches, from coarsest to finest:
//  - compile time: configure with -DZSKY_TRACING=OFF and every macro
//    expands to nothing — zero code, zero overhead. The Tracer class
//    itself always compiles (tools and tests use the API directly).
//  - runtime: spans are only recorded while Tracer::Global().enabled() is
//    true (one relaxed atomic load per call site when disabled). Enabled
//    either programmatically (SetEnabled) or by setting the ZSKY_TRACE
//    environment variable to a non-zero value before process start.
//  - per-span args: the args expression of ZSKY_TRACE_SPAN_ARGS /
//    ZSKY_TRACE_INSTANT is only evaluated when the tracer is enabled.
//
// Thread safety: Record*/Snapshot/Clear may be called from any thread;
// the ring is guarded by a mutex. Spans are recorded at task/phase
// granularity (never per point), so the lock is uncontended in practice.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

// Defined to 0 by the build system when configured with ZSKY_TRACING=OFF.
#ifndef ZSKY_TRACING_ENABLED
#define ZSKY_TRACING_ENABLED 1
#endif

namespace zsky::trace {

// One recorded event. `phase` follows the Chrome trace_event convention:
// 'X' = complete span (start_ns + dur_ns), 'i' = instant event.
struct Span {
  std::string name;
  std::string args;  // JSON object text ("{...}") or empty.
  uint32_t tid = 0;
  char phase = 'X';
  uint64_t seq = 0;       // Global record order (completion order).
  uint64_t start_ns = 0;  // Nanoseconds since the process trace epoch.
  uint64_t dur_ns = 0;
};

class Tracer {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit Tracer(size_t capacity = kDefaultCapacity);

  // The process-wide tracer every macro records into. Starts disabled
  // unless the ZSKY_TRACE environment variable is set to a value other
  // than "0".
  static Tracer& Global();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Re-sizes the ring; recorded spans are dropped. Capacity must be >= 1.
  void SetCapacity(size_t capacity);
  void Clear();

  // Records one complete span / instant event (unconditionally — the
  // enabled() gate lives in the macros so tests can drive the API
  // directly). `start_ns` is a NowNs() timestamp.
  void RecordComplete(std::string name, uint64_t start_ns, uint64_t dur_ns,
                      std::string args = {});
  void RecordInstant(std::string name, std::string args = {});

  size_t recorded() const;  // Spans ever recorded.
  size_t dropped() const;   // Spans overwritten by ring wraparound.

  // The surviving spans, oldest first (ascending seq).
  std::vector<Span> Snapshot() const;

  // Chrome trace_event JSON ({"traceEvents":[...]}); see
  // docs/observability.md for how to open it.
  std::string ChromeTraceJson() const;
  bool WriteChromeTrace(const std::string& path) const;

  // Nanoseconds since the process trace epoch (steady clock).
  static uint64_t NowNs();
  // Small dense id of the calling thread (assigned on first use).
  static uint32_t CurrentThreadId();

 private:
  void RecordLocked(Span span);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  size_t capacity_;
  std::vector<Span> ring_;  // ring_[seq % capacity_]
  uint64_t head_ = 0;       // Total spans recorded; next slot index.
};

// RAII span: measures from construction to destruction and records into
// Tracer::Global() iff the tracer was enabled at construction. `name`
// must outlive the span (string literals in practice).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, std::string()) {}
  ScopedSpan(const char* name, std::string args) {
    if (Tracer::Global().enabled()) {
      active_ = true;
      name_ = name;
      args_ = std::move(args);
      start_ns_ = Tracer::NowNs();
    }
  }
  ~ScopedSpan() {
    if (active_) {
      Tracer::Global().RecordComplete(name_, start_ns_,
                                      Tracer::NowNs() - start_ns_,
                                      std::move(args_));
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::string args_;
  uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace zsky::trace

#define ZSKY_TRACE_CONCAT_INNER(a, b) a##b
#define ZSKY_TRACE_CONCAT(a, b) ZSKY_TRACE_CONCAT_INNER(a, b)

#if ZSKY_TRACING_ENABLED
// Span covering the rest of the enclosing scope.
#define ZSKY_TRACE_SPAN(name)      \
  ::zsky::trace::ScopedSpan ZSKY_TRACE_CONCAT(zsky_trace_span_, __LINE__)( \
      (name))
// Same, with a JSON-object args string ("{\"task\":3}"); the args
// expression is only evaluated while the tracer is enabled.
#define ZSKY_TRACE_SPAN_ARGS(name, args_expr)                              \
  ::zsky::trace::ScopedSpan ZSKY_TRACE_CONCAT(zsky_trace_span_, __LINE__)( \
      (name), ::zsky::trace::Tracer::Global().enabled() ? (args_expr)      \
                                                        : ::std::string())
// Zero-duration instant event (retries, invalidations, ...).
#define ZSKY_TRACE_INSTANT(name, args_expr)                               \
  do {                                                                    \
    if (::zsky::trace::Tracer::Global().enabled()) {                      \
      ::zsky::trace::Tracer::Global().RecordInstant((name), (args_expr)); \
    }                                                                     \
  } while (0)
#else
// Compiled out: the name is still "used" (a free void cast of a literal /
// parameter) so call sites stay warning-clean; args expressions are never
// evaluated.
#define ZSKY_TRACE_SPAN(name) ((void)(name))
#define ZSKY_TRACE_SPAN_ARGS(name, args_expr) ((void)(name))
#define ZSKY_TRACE_INSTANT(name, args_expr) ((void)(name))
#endif

#endif  // ZSKY_COMMON_TRACE_H_
