#ifndef ZSKY_COMMON_QUANTIZER_H_
#define ZSKY_COMMON_QUANTIZER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/point_set.h"

namespace zsky {

// Maps real-valued points in [0, 1)^d onto a b-bit integer grid.
//
// Z-addresses require integer coordinates; the paper's generators and real
// datasets are real-valued, so every pipeline starts by quantizing. `bits`
// is the per-dimension resolution (default 16, the value used by all
// benches; ablations sweep it).
class Quantizer {
 public:
  explicit Quantizer(uint32_t bits = 16);

  uint32_t bits() const { return bits_; }
  Coord max_value() const { return max_value_; }

  // Quantizes a single coordinate. Values outside [0, 1) are clamped.
  Coord Quantize(double v) const;

  // Quantizes a full real-valued dataset (row-major doubles, `dim` columns)
  // into a PointSet.
  PointSet QuantizeAll(std::span<const double> values, uint32_t dim) const;

  // Inverse map to the center of the grid cell, for volume computations.
  double Dequantize(Coord c) const;

 private:
  uint32_t bits_;
  Coord max_value_;
  double scale_;
};

}  // namespace zsky

#endif  // ZSKY_COMMON_QUANTIZER_H_
