#ifndef ZSKY_COMMON_DATASET_VIEW_H_
#define ZSKY_COMMON_DATASET_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/point_set.h"

namespace zsky {

// A non-owning, layout-polymorphic read view over a dataset.
//
// The pipeline (plan build, both MR jobs, the planner) consumes points
// through this view so the same code serves two physical layouts:
//  - row-major: a heap-resident PointSet (the in-memory path). Rows are
//    contiguous; `row()` is a zero-copy span.
//  - columnar: one contiguous array per dimension, typically sections of
//    an mmap'd `.zsc` file (io/columnar.h). Rows are gathered on access;
//    bulk consumers should iterate via RowBlockCursor, which transposes
//    block-at-a-time with sequential per-column reads (page-cache
//    friendly) instead of per-row strided loads.
//
// The view does not own storage: the backing PointSet / ColumnarDataset
// must outlive it. Copying a view is cheap (a few pointers).
class DatasetView {
 public:
  // Optional residency hook (columnar backings only): called by
  // RowBlockCursor after a row range has been copied out, so an mmap
  // backing under a memory budget can drop the pages behind the scan
  // (madvise(MADV_DONTNEED)). Plain function pointer + context to keep
  // common/ free of io/ dependencies.
  using ReleaseRangeFn = void (*)(void* ctx, size_t row_begin,
                                  size_t row_end);

  // Optional readahead hook (columnar backings only): called by scan
  // consumers for the row range they will need *next*, so an mmap backing
  // can fault the pages in on a worker thread while the current range is
  // being processed (io/columnar.h's async readahead). Same
  // function-pointer shape as the release hook, for the same layering
  // reason. Must be cheap and non-blocking: implementations enqueue.
  using PrefetchRangeFn = void (*)(void* ctx, size_t row_begin,
                                   size_t row_end);

  // Empty view (dim 1, no rows).
  DatasetView() = default;

  // Row-major view over a PointSet. Implicit on purpose: every call site
  // that used to take `const PointSet&` keeps working unchanged.
  DatasetView(const PointSet& points)  // NOLINT(runtime/explicit)
      : dim_(points.dim()),
        size_(points.size()),
        rows_(points.raw().data()) {}

  // Row-major view over raw storage (`data` holds size*dim coords).
  static DatasetView RowMajor(const Coord* data, size_t size, uint32_t dim) {
    DatasetView view;
    view.dim_ = dim;
    view.size_ = size;
    view.rows_ = data;
    return view;
  }

  // Columnar view: `columns[d]` points to a contiguous array of `size`
  // coords for dimension d. The pointer array itself must stay alive too
  // (it is borrowed, not copied).
  static DatasetView Columnar(const Coord* const* columns, size_t size,
                              uint32_t dim) {
    DatasetView view;
    view.dim_ = dim;
    view.size_ = size;
    view.cols_ = columns;
    view.soa_stride_ = DetectUniformStride(columns, size, dim);
    return view;
  }

  uint32_t dim() const { return dim_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool columnar() const { return cols_ != nullptr; }

  // Columnar backings only: dimension d's contiguous column.
  const Coord* column(uint32_t d) const {
    ZSKY_DCHECK(columnar() && d < dim_);
    return cols_[d];
  }

  // Columnar-direct entry point: when the columns sit at one uniform
  // element stride (always true for `.zsc` files, whose columns are
  // uniformly sized and 64-byte aligned inside one mapping), exposes the
  // whole dataset as a single SoA block the dominance kernels can consume
  // in place — lane d of row i at base[d * stride + i], no transpose.
  // Returns false (outputs untouched) for row-major views and for
  // columnar views assembled from unrelated allocations.
  bool SoaSpan(const Coord** base, size_t* stride) const {
    if (soa_stride_ == 0) return false;
    *base = cols_[0];
    *stride = soa_stride_;
    return true;
  }

  // Row-major backings only: zero-copy row span.
  std::span<const Coord> row(size_t i) const {
    ZSKY_DCHECK(!columnar() && i < size_);
    return {rows_ + i * dim_, dim_};
  }

  Coord at(size_t i, uint32_t d) const {
    ZSKY_DCHECK(i < size_ && d < dim_);
    return columnar() ? cols_[d][i] : rows_[i * dim_ + d];
  }

  // Copies row `i` into `out[0..dim)`. Works for both layouts.
  void CopyRow(size_t i, Coord* out) const {
    ZSKY_DCHECK(i < size_);
    if (columnar()) {
      for (uint32_t d = 0; d < dim_; ++d) out[d] = cols_[d][i];
    } else {
      const Coord* src = rows_ + i * dim_;
      for (uint32_t d = 0; d < dim_; ++d) out[d] = src[d];
    }
  }

  // Materializes the listed rows into a heap PointSet (the pipeline's
  // gather for local skylines / merge trees: only survivors are copied,
  // the base data stays in the page cache).
  PointSet Gather(std::span<const uint32_t> rows) const;

  // Materializes rows [begin, end) into a heap PointSet.
  PointSet Materialize(size_t begin, size_t end) const;
  PointSet Materialize() const { return Materialize(0, size_); }

  // Materializes the rows whose `alive` flag is non-zero, in row order
  // (every row when `alive` is null) — the write path's merge gather
  // (docs/updates.md). `alive`, when set, must have size() entries.
  // Streams via RowBlockCursor, so an mmap'd columnar backing is read
  // sequentially and released behind the scan.
  PointSet GatherAlive(const uint8_t* alive) const;

  void SetReleaseHook(ReleaseRangeFn fn, void* ctx) {
    release_fn_ = fn;
    release_ctx_ = ctx;
  }
  bool has_release_hook() const { return release_fn_ != nullptr; }
  void ReleaseRows(size_t row_begin, size_t row_end) const {
    if (release_fn_ != nullptr && row_end > row_begin) {
      release_fn_(release_ctx_, row_begin, row_end);
    }
  }

  void SetPrefetchHook(PrefetchRangeFn fn, void* ctx) {
    prefetch_fn_ = fn;
    prefetch_ctx_ = ctx;
  }
  bool has_prefetch_hook() const { return prefetch_fn_ != nullptr; }
  // Drops the readahead hook from this copy of the view — the
  // ExecutorOptions::readahead ablation switch (the backing's worker is
  // untouched; it just never hears from this scan).
  void DisarmPrefetch() {
    prefetch_fn_ = nullptr;
    prefetch_ctx_ = nullptr;
  }
  void WillNeedRows(size_t row_begin, size_t row_end) const {
    if (prefetch_fn_ != nullptr && row_end > row_begin) {
      prefetch_fn_(prefetch_ctx_, row_begin, row_end);
    }
  }

  // Per-block min/max sketch (columnar backings whose file carries the
  // sketch trailer — io/columnar.h). Block b of `block_rows` rows has
  // per-dimension bounds mins[b * dim + d] / maxs[b * dim + d]. Absent
  // (num_blocks() == 0) on heap views and on pre-sketch `.zsc` files, in
  // which case constrained scans simply do not prune.
  void SetSketch(const Coord* mins, const Coord* maxs, size_t block_rows,
                 size_t num_blocks) {
    sketch_mins_ = mins;
    sketch_maxs_ = maxs;
    sketch_block_rows_ = block_rows;
    sketch_blocks_ = num_blocks;
  }
  bool has_sketch() const { return sketch_blocks_ != 0; }
  size_t sketch_block_rows() const { return sketch_block_rows_; }
  size_t sketch_blocks() const { return sketch_blocks_; }
  const Coord* sketch_mins(size_t block) const {
    ZSKY_DCHECK(block < sketch_blocks_);
    return sketch_mins_ + block * dim_;
  }
  const Coord* sketch_maxs(size_t block) const {
    ZSKY_DCHECK(block < sketch_blocks_);
    return sketch_maxs_ + block * dim_;
  }

 private:
  static size_t DetectUniformStride(const Coord* const* columns, size_t size,
                                    uint32_t dim) {
    if (size == 0) return 0;
    if (dim == 1) return size;
    // uintptr_t arithmetic: columns from one mapping have a well-defined
    // uniform spacing; columns from unrelated heap allocations (tests,
    // ad-hoc views) almost never do, and then the cursor path serves.
    const uintptr_t first = reinterpret_cast<uintptr_t>(columns[0]);
    const uintptr_t second = reinterpret_cast<uintptr_t>(columns[1]);
    if (second <= first) return 0;
    const uintptr_t byte_stride = second - first;
    if (byte_stride % sizeof(Coord) != 0) return 0;
    const size_t stride = byte_stride / sizeof(Coord);
    if (stride < size) return 0;
    for (uint32_t d = 2; d < dim; ++d) {
      if (reinterpret_cast<uintptr_t>(columns[d]) !=
          first + static_cast<uintptr_t>(d) * byte_stride) {
        return 0;
      }
    }
    return stride;
  }

  uint32_t dim_ = 1;
  size_t size_ = 0;
  const Coord* rows_ = nullptr;        // Row-major base, or null.
  const Coord* const* cols_ = nullptr; // Per-dimension bases, or null.
  size_t soa_stride_ = 0;              // Uniform column stride, or 0.
  ReleaseRangeFn release_fn_ = nullptr;
  void* release_ctx_ = nullptr;
  PrefetchRangeFn prefetch_fn_ = nullptr;
  void* prefetch_ctx_ = nullptr;
  const Coord* sketch_mins_ = nullptr;
  const Coord* sketch_maxs_ = nullptr;
  size_t sketch_block_rows_ = 0;
  size_t sketch_blocks_ = 0;
};

// Iterates a row range of a DatasetView in blocks, presenting every block
// as row-major coords — the access pattern the SZB filter, the
// partitioner routing and the SoA kernels want.
//
//  - Row-major views yield ONE zero-copy block covering the whole range:
//    byte-for-byte the pre-view behavior of slicing the PointSet.
//  - Columnar views yield blocks of up to `block_rows` rows transposed
//    into an internal buffer. Each column is read sequentially per block;
//    after the copy the consumed range is reported to the view's release
//    hook (if any), so a budget-bounded mmap backing can immediately drop
//    the pages behind the scan.
class RowBlockCursor {
 public:
  // ~256 KiB of buffered rows at 8 dimensions: big enough to amortize the
  // transpose, small enough to stay cache- and budget-resident.
  static constexpr size_t kDefaultBlockRows = 8192;

  struct Block {
    const Coord* data = nullptr;  // Row-major, rows * view.dim() coords.
    size_t first_row = 0;         // Global row index of data[0].
    size_t rows = 0;
  };

  RowBlockCursor(const DatasetView& view, size_t begin, size_t end,
                 size_t block_rows = kDefaultBlockRows);

  // Fills `block` with the next block; returns false when exhausted.
  bool Next(Block* block);

 private:
  const DatasetView* view_;
  size_t pos_;
  size_t end_;
  size_t block_rows_;
  std::vector<Coord> buffer_;  // Columnar transpose scratch.
};

}  // namespace zsky

#endif  // ZSKY_COMMON_DATASET_VIEW_H_
