#ifndef ZSKY_COMMON_DATASET_VIEW_H_
#define ZSKY_COMMON_DATASET_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/macros.h"
#include "common/point_set.h"

namespace zsky {

// A non-owning, layout-polymorphic read view over a dataset.
//
// The pipeline (plan build, both MR jobs, the planner) consumes points
// through this view so the same code serves two physical layouts:
//  - row-major: a heap-resident PointSet (the in-memory path). Rows are
//    contiguous; `row()` is a zero-copy span.
//  - columnar: one contiguous array per dimension, typically sections of
//    an mmap'd `.zsc` file (io/columnar.h). Rows are gathered on access;
//    bulk consumers should iterate via RowBlockCursor, which transposes
//    block-at-a-time with sequential per-column reads (page-cache
//    friendly) instead of per-row strided loads.
//
// The view does not own storage: the backing PointSet / ColumnarDataset
// must outlive it. Copying a view is cheap (a few pointers).
class DatasetView {
 public:
  // Optional residency hook (columnar backings only): called by
  // RowBlockCursor after a row range has been copied out, so an mmap
  // backing under a memory budget can drop the pages behind the scan
  // (madvise(MADV_DONTNEED)). Plain function pointer + context to keep
  // common/ free of io/ dependencies.
  using ReleaseRangeFn = void (*)(void* ctx, size_t row_begin,
                                  size_t row_end);

  // Empty view (dim 1, no rows).
  DatasetView() = default;

  // Row-major view over a PointSet. Implicit on purpose: every call site
  // that used to take `const PointSet&` keeps working unchanged.
  DatasetView(const PointSet& points)  // NOLINT(runtime/explicit)
      : dim_(points.dim()),
        size_(points.size()),
        rows_(points.raw().data()) {}

  // Row-major view over raw storage (`data` holds size*dim coords).
  static DatasetView RowMajor(const Coord* data, size_t size, uint32_t dim) {
    DatasetView view;
    view.dim_ = dim;
    view.size_ = size;
    view.rows_ = data;
    return view;
  }

  // Columnar view: `columns[d]` points to a contiguous array of `size`
  // coords for dimension d. The pointer array itself must stay alive too
  // (it is borrowed, not copied).
  static DatasetView Columnar(const Coord* const* columns, size_t size,
                              uint32_t dim) {
    DatasetView view;
    view.dim_ = dim;
    view.size_ = size;
    view.cols_ = columns;
    return view;
  }

  uint32_t dim() const { return dim_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool columnar() const { return cols_ != nullptr; }

  // Columnar backings only: dimension d's contiguous column.
  const Coord* column(uint32_t d) const {
    ZSKY_DCHECK(columnar() && d < dim_);
    return cols_[d];
  }

  // Row-major backings only: zero-copy row span.
  std::span<const Coord> row(size_t i) const {
    ZSKY_DCHECK(!columnar() && i < size_);
    return {rows_ + i * dim_, dim_};
  }

  Coord at(size_t i, uint32_t d) const {
    ZSKY_DCHECK(i < size_ && d < dim_);
    return columnar() ? cols_[d][i] : rows_[i * dim_ + d];
  }

  // Copies row `i` into `out[0..dim)`. Works for both layouts.
  void CopyRow(size_t i, Coord* out) const {
    ZSKY_DCHECK(i < size_);
    if (columnar()) {
      for (uint32_t d = 0; d < dim_; ++d) out[d] = cols_[d][i];
    } else {
      const Coord* src = rows_ + i * dim_;
      for (uint32_t d = 0; d < dim_; ++d) out[d] = src[d];
    }
  }

  // Materializes the listed rows into a heap PointSet (the pipeline's
  // gather for local skylines / merge trees: only survivors are copied,
  // the base data stays in the page cache).
  PointSet Gather(std::span<const uint32_t> rows) const;

  // Materializes rows [begin, end) into a heap PointSet.
  PointSet Materialize(size_t begin, size_t end) const;
  PointSet Materialize() const { return Materialize(0, size_); }

  // Materializes the rows whose `alive` flag is non-zero, in row order
  // (every row when `alive` is null) — the write path's merge gather
  // (docs/updates.md). `alive`, when set, must have size() entries.
  // Streams via RowBlockCursor, so an mmap'd columnar backing is read
  // sequentially and released behind the scan.
  PointSet GatherAlive(const uint8_t* alive) const;

  void SetReleaseHook(ReleaseRangeFn fn, void* ctx) {
    release_fn_ = fn;
    release_ctx_ = ctx;
  }
  bool has_release_hook() const { return release_fn_ != nullptr; }
  void ReleaseRows(size_t row_begin, size_t row_end) const {
    if (release_fn_ != nullptr && row_end > row_begin) {
      release_fn_(release_ctx_, row_begin, row_end);
    }
  }

 private:
  uint32_t dim_ = 1;
  size_t size_ = 0;
  const Coord* rows_ = nullptr;        // Row-major base, or null.
  const Coord* const* cols_ = nullptr; // Per-dimension bases, or null.
  ReleaseRangeFn release_fn_ = nullptr;
  void* release_ctx_ = nullptr;
};

// Iterates a row range of a DatasetView in blocks, presenting every block
// as row-major coords — the access pattern the SZB filter, the
// partitioner routing and the SoA kernels want.
//
//  - Row-major views yield ONE zero-copy block covering the whole range:
//    byte-for-byte the pre-view behavior of slicing the PointSet.
//  - Columnar views yield blocks of up to `block_rows` rows transposed
//    into an internal buffer. Each column is read sequentially per block;
//    after the copy the consumed range is reported to the view's release
//    hook (if any), so a budget-bounded mmap backing can immediately drop
//    the pages behind the scan.
class RowBlockCursor {
 public:
  // ~256 KiB of buffered rows at 8 dimensions: big enough to amortize the
  // transpose, small enough to stay cache- and budget-resident.
  static constexpr size_t kDefaultBlockRows = 8192;

  struct Block {
    const Coord* data = nullptr;  // Row-major, rows * view.dim() coords.
    size_t first_row = 0;         // Global row index of data[0].
    size_t rows = 0;
  };

  RowBlockCursor(const DatasetView& view, size_t begin, size_t end,
                 size_t block_rows = kDefaultBlockRows);

  // Fills `block` with the next block; returns false when exhausted.
  bool Next(Block* block);

 private:
  const DatasetView* view_;
  size_t pos_;
  size_t end_;
  size_t block_rows_;
  std::vector<Coord> buffer_;  // Columnar transpose scratch.
};

}  // namespace zsky

#endif  // ZSKY_COMMON_DATASET_VIEW_H_
