#ifndef ZSKY_COMMON_SCAN_COUNTERS_H_
#define ZSKY_COMMON_SCAN_COUNTERS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace zsky {

// Process-wide counters for the out-of-core read path. They live in
// common/ (not io/) because both sides of the dependency edge need them:
// RowBlockCursor (common/) meters transpose traffic, ColumnarDataset (io/)
// meters readahead, and the pipeline (core/) snapshots deltas into
// JobMetrics without having to see the dataset that backs a DatasetView.
//
// All counters are monotonic except candidate_bytes_current, which is a
// level gauge. Everything uses relaxed ordering: these are statistics, not
// synchronization.
struct ScanCounters {
  // Bytes copied by RowBlockCursor's columnar->row-major transpose. The
  // columnar-direct map wave exists to keep this at zero.
  std::atomic<uint64_t> transpose_bytes{0};

  // Bytes touched by the async readahead worker (pages pulled ahead of
  // the scan), and how that effort paid off: a "hit" is a consumed row
  // range that a completed prefetch had already covered; "wasted" bytes
  // were prefetched but never consumed before their record was evicted
  // or the dataset closed.
  std::atomic<uint64_t> readahead_bytes{0};
  std::atomic<uint64_t> readahead_hits{0};
  std::atomic<uint64_t> readahead_wasted_bytes{0};

  // Rows skipped wholesale by per-block min/max sketch pruning in
  // constrained (box) scans.
  std::atomic<uint64_t> rows_pruned_by_sketch{0};

  // Candidate-side memory (local-skyline gathers, merge-tree builds)
  // accounted under the residency budget. current is the live level;
  // peak is the process-lifetime high-water mark.
  std::atomic<uint64_t> candidate_bytes_current{0};
  std::atomic<uint64_t> candidate_bytes_peak{0};
};

inline ScanCounters& GlobalScanCounters() {
  static ScanCounters counters;
  return counters;
}

// Point-in-time copy of the monotonic counters, for delta accounting
// around a pipeline job.
struct ScanCounterSnapshot {
  uint64_t transpose_bytes = 0;
  uint64_t readahead_bytes = 0;
  uint64_t readahead_hits = 0;
  uint64_t readahead_wasted_bytes = 0;
  uint64_t rows_pruned_by_sketch = 0;
};

inline ScanCounterSnapshot SnapshotScanCounters() {
  const ScanCounters& c = GlobalScanCounters();
  ScanCounterSnapshot s;
  s.transpose_bytes = c.transpose_bytes.load(std::memory_order_relaxed);
  s.readahead_bytes = c.readahead_bytes.load(std::memory_order_relaxed);
  s.readahead_hits = c.readahead_hits.load(std::memory_order_relaxed);
  s.readahead_wasted_bytes =
      c.readahead_wasted_bytes.load(std::memory_order_relaxed);
  s.rows_pruned_by_sketch =
      c.rows_pruned_by_sketch.load(std::memory_order_relaxed);
  return s;
}

// RAII accounting for a candidate-side allocation: bumps the level gauge
// (and the peak) for its lifetime. The byte count is the caller's estimate
// of the allocation it brackets; it must be stable across construction
// and destruction, so callers size it once up front.
class ScopedCandidateBytes {
 public:
  explicit ScopedCandidateBytes(uint64_t bytes) : bytes_(bytes) {
    ScanCounters& c = GlobalScanCounters();
    uint64_t now =
        c.candidate_bytes_current.fetch_add(bytes_, std::memory_order_relaxed) +
        bytes_;
    uint64_t peak = c.candidate_bytes_peak.load(std::memory_order_relaxed);
    while (now > peak && !c.candidate_bytes_peak.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
  }
  ~ScopedCandidateBytes() {
    GlobalScanCounters().candidate_bytes_current.fetch_sub(
        bytes_, std::memory_order_relaxed);
  }
  ScopedCandidateBytes(const ScopedCandidateBytes&) = delete;
  ScopedCandidateBytes& operator=(const ScopedCandidateBytes&) = delete;

 private:
  uint64_t bytes_;
};

}  // namespace zsky

#endif  // ZSKY_COMMON_SCAN_COUNTERS_H_
