#ifndef ZSKY_COMMON_DOMINANCE_BLOCK_H_
#define ZSKY_COMMON_DOMINANCE_BLOCK_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/dominance_kernels.h"
#include "common/point_set.h"

namespace zsky {

// Points per inner tile of the block dominance kernels. A tile is small
// enough for its uint8 flag buffers to stay in L1 yet wide enough that the
// per-dimension compare loops auto-vectorize.
inline constexpr size_t kDominanceTile = 128;

// Structure-of-arrays dominance kernels. Each scans points [begin, end) of
// a column-major block whose k-th coordinate lane starts at
// `base + k * stride` (stride >= end). They replace per-pair Dominates()
// calls on hot paths: instead of short-circuiting per point, whole tiles
// are compared dimension-by-dimension over contiguous lanes, with an
// early exit per tile.
//
// Each call dispatches to the best instruction set the CPU supports
// (scalar / SSE4.2 / AVX2 — see common/cpu.h and dominance_kernels.h);
// all variants return bit-identical results. ZSKY_FORCE_ISA pins a tier.

// True iff some scanned point strictly dominates `p`.
bool SoAAnyDominates(const Coord* base, size_t stride, uint32_t dim,
                     size_t begin, size_t end, std::span<const Coord> p);

// Number of scanned points strictly dominating `p`.
size_t SoACountDominators(const Coord* base, size_t stride, uint32_t dim,
                          size_t begin, size_t end, std::span<const Coord> p);

// Flags the scanned points strictly dominated by `p`:
// out[i - begin] = 1 iff point i is dominated, 0 otherwise. `out` must hold
// end - begin entries. Returns the number of flagged points.
size_t SoAMarkDominatedBy(const Coord* base, size_t stride, uint32_t dim,
                          size_t begin, size_t end, std::span<const Coord> p,
                          uint8_t* out);

// Column-at-a-time SZB probe for the columnar-direct map wave: both sides
// stay SoA. Flags every wave row in [begin, end) that some point of the
// filter block (filt / filt_stride / filt_size, same lane layout) strictly
// dominates: out[i - begin] = 1 iff row i is dominated. Returns the number
// of dominated rows. filt_size == 0 leaves out all-zero.
//
// `pruning` is optional (pass nullptr for a full scan): the two-level
// min-pruning descriptor built by MaskFilterIndex (see
// dominance_kernels.h for the layout and skipping rule). A tile or
// supertile whose min exceeds the row on any dimension cannot hold a
// dominator and is skipped, which turns the full-block proof an
// undominated row otherwise pays into a handful of min-checks. Pruning
// never skips a dominator, so output is bit-identical with and without
// the index.
size_t SoAMaskAnyDominated(const Coord* base, size_t stride, uint32_t dim,
                           size_t begin, size_t end, const Coord* filt,
                           size_t filt_stride, size_t filt_size,
                           const simd::MaskFilterPruning* pruning,
                           uint8_t* out);

// A growable batch of points in structure-of-arrays layout, answering
// dominance questions against the whole batch with the kernels above.
// Skyline windows (sort-based BNL passes, the BNL window itself) are the
// intended use: append accepted points, test each incoming point against
// the batch.
class DominanceBlock {
 public:
  explicit DominanceBlock(uint32_t dim) : dim_(dim) { ZSKY_CHECK(dim >= 1); }

  uint32_t dim() const { return dim_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Reserve(size_t n) {
    if (n > capacity_) Regrow(n);
  }

  void Clear() { size_ = 0; }

  // Appends one point (must have dim() coordinates).
  void Append(std::span<const Coord> p);

  // Appends every point of `points` (dimensions must match).
  void AppendAll(const PointSet& points);

  // True iff some stored point strictly dominates `p`.
  bool AnyDominates(std::span<const Coord> p) const {
    return SoAAnyDominates(data_.data(), capacity_, dim_, 0, size_, p);
  }

  // Number of stored points strictly dominating `p`.
  size_t CountDominators(std::span<const Coord> p) const {
    return SoACountDominators(data_.data(), capacity_, dim_, 0, size_, p);
  }

  // Sets out[i] = 1 iff `p` strictly dominates stored point i (out is
  // resized to size()). Returns the number of dominated points.
  size_t DominatedBitmap(std::span<const Coord> p,
                         std::vector<uint8_t>& out) const;

  // Removes every point whose flag is set, preserving the order of the
  // survivors. `flags` must have size() entries.
  void Remove(const std::vector<uint8_t>& flags);

  // Copies stored point `i` out (row-major), mainly for tests.
  void CopyPoint(size_t i, std::span<Coord> out) const;

  // Raw SoA view of the batch, for kernels that take the block as the
  // *filter* side (SoAMaskAnyDominated): lane k of point i lives at
  // lanes()[k * lane_stride() + i]. Invalidated by Append/Reserve/Remove.
  const Coord* lanes() const { return data_.data(); }
  size_t lane_stride() const { return capacity_; }

 private:
  void Regrow(size_t min_capacity);

  uint32_t dim_;
  size_t size_ = 0;
  size_t capacity_ = 0;
  // Lane k occupies [k * capacity_, k * capacity_ + size_).
  std::vector<Coord> data_;
};

// A min-pruned probe index over a DominanceBlock, feeding
// SoAMaskAnyDominated's tile skipping. Holds a copy of the filter sorted
// by Morton (bit-interleaved) order — so consecutive points are spatially
// close and each tile's per-dimension min stays tight — plus the SoA
// minima of every kMaskTilePoints-sized tile. "Does any filter point
// dominate p" is invariant under permutation of the filter, so probing
// the reordered copy answers identically to probing the source block; the
// clustering only makes the min test selective. Built once per query
// plan; the source block stays untouched (the row-cursor ablation path
// keeps probing it directly).
struct MaskFilterIndex {
  DominanceBlock block;
  // Per-dimension tile minima: min of dimension k over tile t lives at
  // tile_mins[k * tile_stride + t]; super_mins fold kMaskTilesPerSuper
  // consecutive tiles the same way. Both strides are padded to a multiple
  // of 8 lanes with ~0u in the padding, so a vector min-check never
  // qualifies a padding lane (and its scan range would be empty anyway).
  // tile_stride equals num_supers * kMaskTilesPerSuper exactly, so the
  // tile group of supertile s — 8 lanes at offset s * kMaskTilesPerSuper —
  // is always a full in-bounds vector load.
  std::vector<Coord> tile_mins;
  size_t tile_stride = 0;
  std::vector<Coord> super_mins;
  size_t super_stride = 0;

  explicit MaskFilterIndex(const DominanceBlock& src);

  // The descriptor SoAMaskAnyDominated takes; valid while *this lives.
  simd::MaskFilterPruning pruning() const {
    return {tile_mins.data(), tile_stride, super_mins.data(), super_stride};
  }
};

}  // namespace zsky

#endif  // ZSKY_COMMON_DOMINANCE_BLOCK_H_
