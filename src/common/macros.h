#ifndef ZSKY_COMMON_MACROS_H_
#define ZSKY_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Fatal precondition / invariant check. Always on (benchmark-relevant code
// avoids placing these on per-point hot paths; structural checks only).
#define ZSKY_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "ZSKY_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define ZSKY_CHECK_MSG(cond, msg)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "ZSKY_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                     \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

// Debug-only check, compiled out in release builds.
#ifndef NDEBUG
#define ZSKY_DCHECK(cond) ZSKY_CHECK(cond)
#else
#define ZSKY_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // ZSKY_COMMON_MACROS_H_
