// Portable tile kernels: compare whole tiles of kDominanceTile points
// dimension-by-dimension into uint8 flag buffers (loops a compiler
// auto-vectorizes at baseline arch flags), with an early exit per tile.

#include <algorithm>
#include <vector>

#include "common/dominance_block.h"
#include "common/dominance_kernels.h"

namespace zsky::simd {

bool AnyDominatesScalar(const Coord* base, size_t stride, uint32_t dim,
                        size_t begin, size_t end, const Coord* p) {
  uint8_t leq[kDominanceTile];
  uint8_t lt[kDominanceTile];
  const Coord p0 = p[0];
  for (size_t at = begin; at < end; at += kDominanceTile) {
    const size_t m = std::min(kDominanceTile, end - at);
    const Coord* lane0 = base + at;
    for (size_t j = 0; j < m; ++j) {
      leq[j] = static_cast<uint8_t>(lane0[j] <= p0);
      lt[j] = static_cast<uint8_t>(lane0[j] < p0);
    }
    for (uint32_t k = 1; k < dim; ++k) {
      const Coord* lane = base + k * stride + at;
      const Coord pk = p[k];
      for (size_t j = 0; j < m; ++j) {
        leq[j] &= static_cast<uint8_t>(lane[j] <= pk);
        lt[j] |= static_cast<uint8_t>(lane[j] < pk);
      }
    }
    uint8_t any = 0;
    for (size_t j = 0; j < m; ++j) {
      any |= static_cast<uint8_t>(leq[j] & lt[j]);
    }
    if (any) return true;
  }
  return false;
}

size_t CountDominatorsScalar(const Coord* base, size_t stride, uint32_t dim,
                             size_t begin, size_t end, const Coord* p) {
  uint8_t leq[kDominanceTile];
  uint8_t lt[kDominanceTile];
  size_t count = 0;
  const Coord p0 = p[0];
  for (size_t at = begin; at < end; at += kDominanceTile) {
    const size_t m = std::min(kDominanceTile, end - at);
    const Coord* lane0 = base + at;
    for (size_t j = 0; j < m; ++j) {
      leq[j] = static_cast<uint8_t>(lane0[j] <= p0);
      lt[j] = static_cast<uint8_t>(lane0[j] < p0);
    }
    for (uint32_t k = 1; k < dim; ++k) {
      const Coord* lane = base + k * stride + at;
      const Coord pk = p[k];
      for (size_t j = 0; j < m; ++j) {
        leq[j] &= static_cast<uint8_t>(lane[j] <= pk);
        lt[j] |= static_cast<uint8_t>(lane[j] < pk);
      }
    }
    for (size_t j = 0; j < m; ++j) {
      count += static_cast<size_t>(leq[j] & lt[j]);
    }
  }
  return count;
}

size_t MarkDominatedByScalar(const Coord* base, size_t stride, uint32_t dim,
                             size_t begin, size_t end, const Coord* p,
                             uint8_t* out) {
  uint8_t geq[kDominanceTile];
  uint8_t gt[kDominanceTile];
  size_t count = 0;
  const Coord p0 = p[0];
  for (size_t at = begin; at < end; at += kDominanceTile) {
    const size_t m = std::min(kDominanceTile, end - at);
    const Coord* lane0 = base + at;
    for (size_t j = 0; j < m; ++j) {
      geq[j] = static_cast<uint8_t>(lane0[j] >= p0);
      gt[j] = static_cast<uint8_t>(lane0[j] > p0);
    }
    for (uint32_t k = 1; k < dim; ++k) {
      const Coord* lane = base + k * stride + at;
      const Coord pk = p[k];
      for (size_t j = 0; j < m; ++j) {
        geq[j] &= static_cast<uint8_t>(lane[j] >= pk);
        gt[j] |= static_cast<uint8_t>(lane[j] > pk);
      }
    }
    uint8_t* slab = out + (at - begin);
    for (size_t j = 0; j < m; ++j) {
      slab[j] = static_cast<uint8_t>(geq[j] & gt[j]);
      count += slab[j];
    }
  }
  return count;
}

size_t MaskAnyDominatedScalar(const Coord* base, size_t stride, uint32_t dim,
                              size_t begin, size_t end, const Coord* filt,
                              size_t filt_stride, size_t filt_size,
                              const MaskFilterPruning* pruning,
                              uint8_t* out) {
  // Per-row orientation: gather each wave row's coords out of the SoA
  // columns and run the AnyDominates scan over the filter block. The scan
  // stops at the first dominator, which retires dominated rows after a
  // handful of comparisons. Rows NO filter point dominates are the
  // expensive case — they must otherwise scan the whole block to prove
  // the miss — so with `pruning` each supertile, then each tile of a
  // qualifying supertile, is first checked for "min <= row in every
  // dimension"; groups failing it cannot hold a dominator and are skipped
  // (see dominance_kernels.h).
  std::vector<Coord> row(dim);
  const size_t num_tiles =
      (filt_size + kMaskTilePoints - 1) / kMaskTilePoints;
  const size_t num_supers =
      (num_tiles + kMaskTilesPerSuper - 1) / kMaskTilesPerSuper;
  size_t count = 0;
  for (size_t i = begin; i < end; ++i) {
    for (uint32_t k = 0; k < dim; ++k) row[k] = base[k * stride + i];
    bool dom = false;
    if (pruning != nullptr) {
      for (size_t s = 0; s < num_supers && !dom; ++s) {
        bool super_may = true;
        for (uint32_t k = 0; k < dim; ++k) {
          if (pruning->super_mins[k * pruning->super_stride + s] > row[k]) {
            super_may = false;
            break;
          }
        }
        if (!super_may) continue;
        const size_t tile_hi =
            std::min(num_tiles, (s + 1) * kMaskTilesPerSuper);
        for (size_t t = s * kMaskTilesPerSuper; t < tile_hi && !dom; ++t) {
          bool may_hold = true;
          for (uint32_t k = 0; k < dim; ++k) {
            if (pruning->tile_mins[k * pruning->tile_stride + t] > row[k]) {
              may_hold = false;
              break;
            }
          }
          if (!may_hold) continue;
          const size_t t0 = t * kMaskTilePoints;
          const size_t t1 = std::min(filt_size, t0 + kMaskTilePoints);
          dom =
              AnyDominatesScalar(filt, filt_stride, dim, t0, t1, row.data());
        }
      }
    } else {
      dom = AnyDominatesScalar(filt, filt_stride, dim, 0, filt_size,
                               row.data());
    }
    out[i - begin] = static_cast<uint8_t>(dom);
    count += static_cast<size_t>(dom);
  }
  return count;
}

}  // namespace zsky::simd
