// Portable tile kernels: compare whole tiles of kDominanceTile points
// dimension-by-dimension into uint8 flag buffers (loops a compiler
// auto-vectorizes at baseline arch flags), with an early exit per tile.

#include <algorithm>

#include "common/dominance_block.h"
#include "common/dominance_kernels.h"

namespace zsky::simd {

bool AnyDominatesScalar(const Coord* base, size_t stride, uint32_t dim,
                        size_t begin, size_t end, const Coord* p) {
  uint8_t leq[kDominanceTile];
  uint8_t lt[kDominanceTile];
  const Coord p0 = p[0];
  for (size_t at = begin; at < end; at += kDominanceTile) {
    const size_t m = std::min(kDominanceTile, end - at);
    const Coord* lane0 = base + at;
    for (size_t j = 0; j < m; ++j) {
      leq[j] = static_cast<uint8_t>(lane0[j] <= p0);
      lt[j] = static_cast<uint8_t>(lane0[j] < p0);
    }
    for (uint32_t k = 1; k < dim; ++k) {
      const Coord* lane = base + k * stride + at;
      const Coord pk = p[k];
      for (size_t j = 0; j < m; ++j) {
        leq[j] &= static_cast<uint8_t>(lane[j] <= pk);
        lt[j] |= static_cast<uint8_t>(lane[j] < pk);
      }
    }
    uint8_t any = 0;
    for (size_t j = 0; j < m; ++j) {
      any |= static_cast<uint8_t>(leq[j] & lt[j]);
    }
    if (any) return true;
  }
  return false;
}

size_t CountDominatorsScalar(const Coord* base, size_t stride, uint32_t dim,
                             size_t begin, size_t end, const Coord* p) {
  uint8_t leq[kDominanceTile];
  uint8_t lt[kDominanceTile];
  size_t count = 0;
  const Coord p0 = p[0];
  for (size_t at = begin; at < end; at += kDominanceTile) {
    const size_t m = std::min(kDominanceTile, end - at);
    const Coord* lane0 = base + at;
    for (size_t j = 0; j < m; ++j) {
      leq[j] = static_cast<uint8_t>(lane0[j] <= p0);
      lt[j] = static_cast<uint8_t>(lane0[j] < p0);
    }
    for (uint32_t k = 1; k < dim; ++k) {
      const Coord* lane = base + k * stride + at;
      const Coord pk = p[k];
      for (size_t j = 0; j < m; ++j) {
        leq[j] &= static_cast<uint8_t>(lane[j] <= pk);
        lt[j] |= static_cast<uint8_t>(lane[j] < pk);
      }
    }
    for (size_t j = 0; j < m; ++j) {
      count += static_cast<size_t>(leq[j] & lt[j]);
    }
  }
  return count;
}

size_t MarkDominatedByScalar(const Coord* base, size_t stride, uint32_t dim,
                             size_t begin, size_t end, const Coord* p,
                             uint8_t* out) {
  uint8_t geq[kDominanceTile];
  uint8_t gt[kDominanceTile];
  size_t count = 0;
  const Coord p0 = p[0];
  for (size_t at = begin; at < end; at += kDominanceTile) {
    const size_t m = std::min(kDominanceTile, end - at);
    const Coord* lane0 = base + at;
    for (size_t j = 0; j < m; ++j) {
      geq[j] = static_cast<uint8_t>(lane0[j] >= p0);
      gt[j] = static_cast<uint8_t>(lane0[j] > p0);
    }
    for (uint32_t k = 1; k < dim; ++k) {
      const Coord* lane = base + k * stride + at;
      const Coord pk = p[k];
      for (size_t j = 0; j < m; ++j) {
        geq[j] &= static_cast<uint8_t>(lane[j] >= pk);
        gt[j] |= static_cast<uint8_t>(lane[j] > pk);
      }
    }
    uint8_t* slab = out + (at - begin);
    for (size_t j = 0; j < m; ++j) {
      slab[j] = static_cast<uint8_t>(geq[j] & gt[j]);
      count += slab[j];
    }
  }
  return count;
}

}  // namespace zsky::simd
