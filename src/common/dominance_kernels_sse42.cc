// SSE4.2 dominance kernels: 4 points per __m128i, unsigned compares via
// the sign-flip trick (see dominance_kernels_avx2.cc). Only this TU is
// compiled with -msse4.2; without compiler support it degrades to
// forwarding stubs.

#include "common/dominance_kernels.h"

#if defined(__SSE4_2__)

#include <smmintrin.h>

#include <algorithm>
#include <bit>

namespace zsky::simd {

namespace {

inline bool FlipProbe(const Coord* p, uint32_t dim, int32_t* pf) {
  if (dim > kMaxVectorDim) return false;
  for (uint32_t k = 0; k < dim; ++k) {
    pf[k] = static_cast<int32_t>(p[k] ^ 0x80000000u);
  }
  return true;
}

}  // namespace

bool AnyDominatesSse42(const Coord* base, size_t stride, uint32_t dim,
                       size_t begin, size_t end, const Coord* p) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return AnyDominatesScalar(base, stride, dim, begin, end, p);
  }
  const __m128i sign = _mm_set1_epi32(INT32_MIN);
  size_t at = begin;
  for (; at + 4 <= end; at += 4) {
    __m128i leq = _mm_set1_epi32(-1);
    __m128i lt = _mm_setzero_si128();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m128i v = _mm_xor_si128(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(base + k * stride + at)),
          sign);
      const __m128i pk = _mm_set1_epi32(pf[k]);
      leq = _mm_andnot_si128(_mm_cmpgt_epi32(v, pk), leq);
      lt = _mm_or_si128(lt, _mm_cmpgt_epi32(pk, v));
      if (_mm_testz_si128(leq, leq)) break;
    }
    if (!_mm_testz_si128(leq, lt)) return true;
  }
  return at < end && AnyDominatesScalar(base, stride, dim, at, end, p);
}

size_t CountDominatorsSse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return CountDominatorsScalar(base, stride, dim, begin, end, p);
  }
  const __m128i sign = _mm_set1_epi32(INT32_MIN);
  size_t count = 0;
  size_t at = begin;
  for (; at + 4 <= end; at += 4) {
    __m128i leq = _mm_set1_epi32(-1);
    __m128i lt = _mm_setzero_si128();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m128i v = _mm_xor_si128(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(base + k * stride + at)),
          sign);
      const __m128i pk = _mm_set1_epi32(pf[k]);
      leq = _mm_andnot_si128(_mm_cmpgt_epi32(v, pk), leq);
      lt = _mm_or_si128(lt, _mm_cmpgt_epi32(pk, v));
      if (_mm_testz_si128(leq, leq)) break;
    }
    const __m128i dom = _mm_and_si128(leq, lt);
    count += static_cast<size_t>(std::popcount(
        static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(dom)))));
  }
  if (at < end) {
    count += CountDominatorsScalar(base, stride, dim, at, end, p);
  }
  return count;
}

size_t MarkDominatedBySse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p,
                            uint8_t* out) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return MarkDominatedByScalar(base, stride, dim, begin, end, p, out);
  }
  const __m128i sign = _mm_set1_epi32(INT32_MIN);
  size_t count = 0;
  size_t at = begin;
  for (; at + 4 <= end; at += 4) {
    __m128i geq = _mm_set1_epi32(-1);
    __m128i gt = _mm_setzero_si128();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m128i v = _mm_xor_si128(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(base + k * stride + at)),
          sign);
      const __m128i pk = _mm_set1_epi32(pf[k]);
      geq = _mm_andnot_si128(_mm_cmpgt_epi32(pk, v), geq);
      gt = _mm_or_si128(gt, _mm_cmpgt_epi32(v, pk));
      if (_mm_testz_si128(geq, geq)) break;
    }
    const uint32_t mask = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_and_si128(geq, gt))));
    uint8_t* slab = out + (at - begin);
    for (uint32_t b = 0; b < 4; ++b) {
      slab[b] = static_cast<uint8_t>((mask >> b) & 1u);
    }
    count += static_cast<size_t>(std::popcount(mask));
  }
  if (at < end) {
    count += MarkDominatedByScalar(base, stride, dim, at, end, p,
                                   out + (at - begin));
  }
  return count;
}

size_t MaskAnyDominatedSse42(const Coord* base, size_t stride, uint32_t dim,
                             size_t begin, size_t end, const Coord* filt,
                             size_t filt_stride, size_t filt_size,
                             const MaskFilterPruning* pruning, uint8_t* out) {
  if (dim > kMaxVectorDim) {
    return MaskAnyDominatedScalar(base, stride, dim, begin, end, filt,
                                  filt_stride, filt_size, pruning, out);
  }
  // Per-row orientation (see MaskAnyDominatedAvx2): gather the row from
  // the SoA columns, min-check supertiles 4 per vector op, the 8 tiles of
  // each qualifying supertile in two more vector ops, and scan only tiles
  // that may hold a dominator; the scan exits at the first dominator
  // found.
  static_assert(kMaskTilesPerSuper == 8,
                "supertile tile group must fill two __m128i");
  Coord row[kMaxVectorDim];
  int32_t pf[kMaxVectorDim];
  const __m128i sign = _mm_set1_epi32(INT32_MIN);
  const size_t num_tiles =
      (filt_size + kMaskTilePoints - 1) / kMaskTilePoints;
  const size_t num_supers =
      (num_tiles + kMaskTilesPerSuper - 1) / kMaskTilesPerSuper;
  size_t count = 0;
  for (size_t i = begin; i < end; ++i) {
    for (uint32_t k = 0; k < dim; ++k) {
      row[k] = base[k * stride + i];
      pf[k] = static_cast<int32_t>(row[k] ^ 0x80000000u);
    }
    bool dom = false;
    if (pruning != nullptr) {
      for (size_t sg = 0; sg < num_supers && !dom; sg += 4) {
        // 4 supertiles at once; the group load is always in-bounds
        // (super_stride is padded to a multiple of 8).
        __m128i smay = _mm_set1_epi32(-1);
        for (uint32_t k = 0; k < dim; ++k) {
          const __m128i mins = _mm_xor_si128(
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(
                  pruning->super_mins + k * pruning->super_stride + sg)),
              sign);
          const __m128i pk = _mm_set1_epi32(pf[k]);
          smay = _mm_andnot_si128(_mm_cmpgt_epi32(mins, pk), smay);
          if (_mm_testz_si128(smay, smay)) break;
        }
        uint32_t sm = static_cast<uint32_t>(
            _mm_movemask_ps(_mm_castsi128_ps(smay)));
        // An all-max row qualifies the ~0u padding lanes too; drop them —
        // their tile groups sit past the end of tile_mins.
        if (num_supers - sg < 4) sm &= (1u << (num_supers - sg)) - 1u;
        while (sm != 0 && !dom) {
          const size_t s = sg + static_cast<size_t>(std::countr_zero(sm));
          sm &= sm - 1;
          // The supertile's 8 tiles in two 4-lane min-checks; in-bounds by
          // the tile_stride == num_supers * kMaskTilesPerSuper invariant.
          const size_t tbase = s * kMaskTilesPerSuper;
          __m128i may_lo = _mm_set1_epi32(-1);
          __m128i may_hi = _mm_set1_epi32(-1);
          for (uint32_t k = 0; k < dim; ++k) {
            const Coord* lane =
                pruning->tile_mins + k * pruning->tile_stride + tbase;
            const __m128i pk = _mm_set1_epi32(pf[k]);
            const __m128i lo = _mm_xor_si128(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(lane)),
                sign);
            const __m128i hi = _mm_xor_si128(
                _mm_loadu_si128(reinterpret_cast<const __m128i*>(lane + 4)),
                sign);
            may_lo = _mm_andnot_si128(_mm_cmpgt_epi32(lo, pk), may_lo);
            may_hi = _mm_andnot_si128(_mm_cmpgt_epi32(hi, pk), may_hi);
            if (_mm_testz_si128(_mm_or_si128(may_lo, may_hi),
                                _mm_or_si128(may_lo, may_hi))) {
              break;
            }
          }
          uint32_t qm =
              static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(may_lo))) |
              (static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(may_hi)))
               << 4);
          while (qm != 0 && !dom) {
            const size_t t = tbase + static_cast<size_t>(std::countr_zero(qm));
            qm &= qm - 1;
            const size_t t0 = t * kMaskTilePoints;
            const size_t t1 = std::min(filt_size, t0 + kMaskTilePoints);
            // A qualifying padding tile (same all-max rows) has an empty
            // range; skip it.
            if (t0 < t1) {
              dom = AnyDominatesSse42(filt, filt_stride, dim, t0, t1, row);
            }
          }
        }
      }
    } else {
      dom = AnyDominatesSse42(filt, filt_stride, dim, 0, filt_size, row);
    }
    out[i - begin] = static_cast<uint8_t>(dom);
    count += static_cast<size_t>(dom);
  }
  return count;
}

}  // namespace zsky::simd

#else  // !defined(__SSE4_2__)

namespace zsky::simd {

bool AnyDominatesSse42(const Coord* base, size_t stride, uint32_t dim,
                       size_t begin, size_t end, const Coord* p) {
  return AnyDominatesScalar(base, stride, dim, begin, end, p);
}

size_t CountDominatorsSse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p) {
  return CountDominatorsScalar(base, stride, dim, begin, end, p);
}

size_t MarkDominatedBySse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p,
                            uint8_t* out) {
  return MarkDominatedByScalar(base, stride, dim, begin, end, p, out);
}

size_t MaskAnyDominatedSse42(const Coord* base, size_t stride, uint32_t dim,
                             size_t begin, size_t end, const Coord* filt,
                             size_t filt_stride, size_t filt_size,
                             const MaskFilterPruning* pruning, uint8_t* out) {
  return MaskAnyDominatedScalar(base, stride, dim, begin, end, filt,
                                filt_stride, filt_size, pruning, out);
}

}  // namespace zsky::simd

#endif  // defined(__SSE4_2__)
