// SSE4.2 dominance kernels: 4 points per __m128i, unsigned compares via
// the sign-flip trick (see dominance_kernels_avx2.cc). Only this TU is
// compiled with -msse4.2; without compiler support it degrades to
// forwarding stubs.

#include "common/dominance_kernels.h"

#if defined(__SSE4_2__)

#include <smmintrin.h>

#include <bit>

namespace zsky::simd {

namespace {

inline bool FlipProbe(const Coord* p, uint32_t dim, int32_t* pf) {
  if (dim > kMaxVectorDim) return false;
  for (uint32_t k = 0; k < dim; ++k) {
    pf[k] = static_cast<int32_t>(p[k] ^ 0x80000000u);
  }
  return true;
}

}  // namespace

bool AnyDominatesSse42(const Coord* base, size_t stride, uint32_t dim,
                       size_t begin, size_t end, const Coord* p) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return AnyDominatesScalar(base, stride, dim, begin, end, p);
  }
  const __m128i sign = _mm_set1_epi32(INT32_MIN);
  size_t at = begin;
  for (; at + 4 <= end; at += 4) {
    __m128i leq = _mm_set1_epi32(-1);
    __m128i lt = _mm_setzero_si128();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m128i v = _mm_xor_si128(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(base + k * stride + at)),
          sign);
      const __m128i pk = _mm_set1_epi32(pf[k]);
      leq = _mm_andnot_si128(_mm_cmpgt_epi32(v, pk), leq);
      lt = _mm_or_si128(lt, _mm_cmpgt_epi32(pk, v));
      if (_mm_testz_si128(leq, leq)) break;
    }
    if (!_mm_testz_si128(leq, lt)) return true;
  }
  return at < end && AnyDominatesScalar(base, stride, dim, at, end, p);
}

size_t CountDominatorsSse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return CountDominatorsScalar(base, stride, dim, begin, end, p);
  }
  const __m128i sign = _mm_set1_epi32(INT32_MIN);
  size_t count = 0;
  size_t at = begin;
  for (; at + 4 <= end; at += 4) {
    __m128i leq = _mm_set1_epi32(-1);
    __m128i lt = _mm_setzero_si128();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m128i v = _mm_xor_si128(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(base + k * stride + at)),
          sign);
      const __m128i pk = _mm_set1_epi32(pf[k]);
      leq = _mm_andnot_si128(_mm_cmpgt_epi32(v, pk), leq);
      lt = _mm_or_si128(lt, _mm_cmpgt_epi32(pk, v));
      if (_mm_testz_si128(leq, leq)) break;
    }
    const __m128i dom = _mm_and_si128(leq, lt);
    count += static_cast<size_t>(std::popcount(
        static_cast<uint32_t>(_mm_movemask_ps(_mm_castsi128_ps(dom)))));
  }
  if (at < end) {
    count += CountDominatorsScalar(base, stride, dim, at, end, p);
  }
  return count;
}

size_t MarkDominatedBySse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p,
                            uint8_t* out) {
  int32_t pf[kMaxVectorDim];
  if (!FlipProbe(p, dim, pf)) {
    return MarkDominatedByScalar(base, stride, dim, begin, end, p, out);
  }
  const __m128i sign = _mm_set1_epi32(INT32_MIN);
  size_t count = 0;
  size_t at = begin;
  for (; at + 4 <= end; at += 4) {
    __m128i geq = _mm_set1_epi32(-1);
    __m128i gt = _mm_setzero_si128();
    for (uint32_t k = 0; k < dim; ++k) {
      const __m128i v = _mm_xor_si128(
          _mm_loadu_si128(
              reinterpret_cast<const __m128i*>(base + k * stride + at)),
          sign);
      const __m128i pk = _mm_set1_epi32(pf[k]);
      geq = _mm_andnot_si128(_mm_cmpgt_epi32(pk, v), geq);
      gt = _mm_or_si128(gt, _mm_cmpgt_epi32(v, pk));
      if (_mm_testz_si128(geq, geq)) break;
    }
    const uint32_t mask = static_cast<uint32_t>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_and_si128(geq, gt))));
    uint8_t* slab = out + (at - begin);
    for (uint32_t b = 0; b < 4; ++b) {
      slab[b] = static_cast<uint8_t>((mask >> b) & 1u);
    }
    count += static_cast<size_t>(std::popcount(mask));
  }
  if (at < end) {
    count += MarkDominatedByScalar(base, stride, dim, at, end, p,
                                   out + (at - begin));
  }
  return count;
}

}  // namespace zsky::simd

#else  // !defined(__SSE4_2__)

namespace zsky::simd {

bool AnyDominatesSse42(const Coord* base, size_t stride, uint32_t dim,
                       size_t begin, size_t end, const Coord* p) {
  return AnyDominatesScalar(base, stride, dim, begin, end, p);
}

size_t CountDominatorsSse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p) {
  return CountDominatorsScalar(base, stride, dim, begin, end, p);
}

size_t MarkDominatedBySse42(const Coord* base, size_t stride, uint32_t dim,
                            size_t begin, size_t end, const Coord* p,
                            uint8_t* out) {
  return MarkDominatedByScalar(base, stride, dim, begin, end, p, out);
}

}  // namespace zsky::simd

#endif  // defined(__SSE4_2__)
