#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace zsky {

double Rng::BoxMuller(double u1, double u2) {
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace zsky
