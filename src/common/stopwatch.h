#ifndef ZSKY_COMMON_STOPWATCH_H_
#define ZSKY_COMMON_STOPWATCH_H_

#include <chrono>

namespace zsky {

// Wall-clock stopwatch used for phase timing in the executor and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction / last Restart, in milliseconds.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedMs() / 1000.0; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace zsky

#endif  // ZSKY_COMMON_STOPWATCH_H_
