// Hotel finder: the paper's motivating example (Figure 1a) at city scale.
//
// Each hotel has four criteria (all minimized): distance to downtown,
// nightly rate, noise level, and years since renovation. The skyline is
// the set of hotels not worse than some other hotel on every criterion —
// the shortlist a booking site would show before any preference weighting.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "zsky.h"

namespace {

struct Hotel {
  std::string name;
  double distance_km;   // 0..20
  double rate_usd;      // 50..1000
  double noise_db;      // 20..90
  double age_years;     // 0..50
};

std::vector<Hotel> MakeCity(size_t n, uint64_t seed) {
  zsky::Rng rng(seed);
  std::vector<Hotel> hotels;
  hotels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Hotel h;
    h.name = "hotel-" + std::to_string(i);
    // Hotels near downtown are pricier and noisier: correlated structure
    // that makes the skyline interesting.
    const double centrality = rng.NextDouble();
    h.distance_km = 20.0 * centrality;
    h.rate_usd = 50.0 + 950.0 * std::max(
        0.0, std::min(1.0, (1.0 - centrality) * 0.7 + 0.3 * rng.NextDouble()));
    h.noise_db = 20.0 + 70.0 * std::max(
        0.0, std::min(1.0, (1.0 - centrality) * 0.5 + 0.5 * rng.NextDouble()));
    h.age_years = 50.0 * rng.NextDouble();
    hotels.push_back(std::move(h));
  }
  return hotels;
}

}  // namespace

int main() {
  using namespace zsky;
  const std::vector<Hotel> hotels = MakeCity(100'000, 7);

  // Normalize each criterion to [0,1) and quantize.
  const Quantizer quantizer(16);
  std::vector<double> values;
  values.reserve(hotels.size() * 4);
  for (const Hotel& h : hotels) {
    values.push_back(h.distance_km / 20.0);
    values.push_back((h.rate_usd - 50.0) / 950.0);
    values.push_back((h.noise_db - 20.0) / 70.0);
    values.push_back(h.age_years / 50.0);
  }
  const PointSet points = quantizer.QuantizeAll(values, 4);

  ExecutorOptions options;
  options.partitioning = PartitioningScheme::kZdg;
  options.num_groups = 8;
  options.bits = quantizer.bits();
  const SkylineQueryResult result =
      ParallelSkylineExecutor(options).Execute(points);

  std::printf("%zu hotels -> %zu skyline hotels in %.1f ms\n", hotels.size(),
              result.skyline.size(), result.metrics.total_ms);
  std::printf("%-12s %9s %9s %9s %9s\n", "name", "dist(km)", "rate($)",
              "noise(dB)", "age(yr)");
  const size_t show = std::min<size_t>(10, result.skyline.size());
  for (size_t i = 0; i < show; ++i) {
    const Hotel& h = hotels[result.skyline[i]];
    std::printf("%-12s %9.2f %9.0f %9.1f %9.1f\n", h.name.c_str(),
                h.distance_km, h.rate_usd, h.noise_db, h.age_years);
  }
  if (result.skyline.size() > show) {
    std::printf("... and %zu more\n", result.skyline.size() - show);
  }
  return 0;
}
