// Streaming skyline over a live feed: maintain the "efficient frontier"
// of listings as offers arrive, using StreamingSkyline (the online
// counterpart of the batch pipeline).
//
// Scenario: a used-car marketplace streams offers (price, mileage, age,
// distance-to-buyer — all minimized). The dashboard keeps the current
// not-dominated set updated per arrival instead of recomputing batches.

#include <cstdio>

#include "zsky.h"

int main() {
  using namespace zsky;

  constexpr uint32_t kDim = 4;
  constexpr size_t kOffers = 200'000;
  const Quantizer quantizer(16);
  const ZOrderCodec codec(kDim, quantizer.bits());

  StreamingSkyline frontier(&codec);
  Rng rng(99);
  Stopwatch watch;
  size_t entered = 0;

  std::vector<Coord> offer(kDim);
  for (size_t i = 0; i < kOffers; ++i) {
    // Correlated listing: newer cars cost more and have fewer miles.
    const double age = rng.NextDouble();
    const double price =
        std::min(1.0, std::max(0.0, (1.0 - age) * 0.8 +
                                        0.2 * rng.NextDouble()));
    const double mileage =
        std::min(1.0, std::max(0.0, age * 0.7 + 0.3 * rng.NextDouble()));
    const double distance = rng.NextDouble();
    offer[0] = quantizer.Quantize(price);
    offer[1] = quantizer.Quantize(mileage);
    offer[2] = quantizer.Quantize(age);
    offer[3] = quantizer.Quantize(distance);
    if (frontier.Insert(offer, static_cast<uint32_t>(i))) ++entered;

    if ((i + 1) % 50'000 == 0) {
      std::printf("after %7zu offers: frontier %5zu  (entered %6zu, "
                  "rejected %6zu, evicted %6zu)  %.1f ms elapsed\n",
                  i + 1, frontier.size(), entered,
                  frontier.rejected_total(), frontier.evicted_total(),
                  watch.ElapsedMs());
    }
  }

  const double total_ms = watch.ElapsedMs();
  std::printf("\nprocessed %zu offers in %.1f ms (%.0f offers/ms)\n",
              kOffers, total_ms, kOffers / total_ms);
  std::printf("final frontier: %zu listings\n", frontier.size());

  // Cross-check against a batch run over the retained history would need
  // the full stream stored; here we verify internal accounting instead.
  const bool consistent =
      frontier.seen_total() ==
      frontier.size() + frontier.rejected_total() + frontier.evicted_total();
  std::printf("accounting consistent: %s\n", consistent ? "yes" : "NO");
  return consistent ? 0 : 1;
}
