// Quickstart: compute a skyline three ways — centralized BNL, centralized
// Z-search, and the full parallel ZDG pipeline — and confirm they agree.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "zsky.h"

int main() {
  using namespace zsky;

  // 1. Generate a dataset: 50k independent 5-d points in [0,1), quantized
  //    onto a 16-bit grid (smaller is better in every dimension).
  const Quantizer quantizer(16);
  const PointSet points = GenerateQuantized(Distribution::kIndependent,
                                            50'000, /*dim=*/5, /*seed=*/42,
                                            quantizer);
  std::printf("dataset: %zu points, dim=%u\n", points.size(), points.dim());

  // 2. Centralized baselines.
  Stopwatch bnl_watch;
  const SkylineIndices bnl = BnlSkyline(points);
  const double bnl_ms = bnl_watch.ElapsedMs();

  const ZOrderCodec codec(points.dim(), quantizer.bits());
  Stopwatch zs_watch;
  const SkylineIndices zs = ZSearchSkyline(codec, points);
  const double zs_ms = zs_watch.ElapsedMs();

  // 3. The paper's pipeline: Z-order partitioning with dominance-based
  //    grouping (ZDG), Z-search locals, Z-merge for the final merge.
  ExecutorOptions options;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.bits = quantizer.bits();
  const ParallelSkylineExecutor executor(options);
  const SkylineQueryResult result = executor.Execute(points);

  std::printf("skyline size: %zu\n", result.skyline.size());
  std::printf("  BNL            %8.1f ms\n", bnl_ms);
  std::printf("  Z-search       %8.1f ms\n", zs_ms);
  std::printf("  ZDG+ZS+ZM      %8.1f ms  (preprocess %.1f, job1 %.1f, "
              "job2 %.1f)\n",
              result.metrics.total_ms, result.metrics.preprocess_ms,
              result.metrics.job1_ms, result.metrics.job2_ms);
  std::printf("  candidates after job 1: %zu (SZB filter dropped %zu, "
              "pruned partitions dropped %zu)\n",
              result.metrics.candidates, result.metrics.filtered_by_szb,
              result.metrics.dropped_by_pruning);

  const bool ok = (result.skyline == bnl) && (zs == bnl);
  std::printf("all three methods agree: %s\n", ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
