// NBA all-stars: the paper's Example 2 workload (player season statistics,
// 7 performance aspects). Stats are maximized, so they are negated into
// the library's minimization convention before the query.
//
// The roster is synthetic but shaped like real season data: a few
// superstars, many role players, and correlated stat lines per archetype.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "zsky.h"

namespace {

constexpr uint32_t kStats = 7;
const char* kStatNames[kStats] = {"pts", "reb", "ast", "stl",
                                  "blk", "fg%", "min"};

struct Player {
  std::string name;
  double stats[kStats];  // All maximized.
};

std::vector<Player> MakeSeason(size_t n, uint64_t seed) {
  zsky::Rng rng(seed);
  std::vector<Player> players;
  players.reserve(n);
  // Archetypes: (scorer, big man, playmaker, 3-and-D, bench).
  const double archetype_means[5][kStats] = {
      {28, 5, 4, 1.2, 0.4, 0.47, 36},  // Scorer.
      {14, 12, 2, 0.7, 2.2, 0.58, 32},  // Big man.
      {16, 4, 9, 1.5, 0.3, 0.45, 34},  // Playmaker.
      {11, 4, 2, 1.4, 0.8, 0.44, 28},  // 3-and-D.
      {6, 3, 1, 0.5, 0.3, 0.42, 15},   // Bench.
  };
  const double max_stat[kStats] = {40, 18, 13, 3, 4, 0.75, 42};
  for (size_t i = 0; i < n; ++i) {
    Player p;
    p.name = "player-" + std::to_string(i);
    const size_t a = rng.NextBounded(5);
    for (uint32_t k = 0; k < kStats; ++k) {
      const double jitter = 1.0 + 0.25 * rng.NextGaussian();
      p.stats[k] =
          std::clamp(archetype_means[a][k] * jitter, 0.0, max_stat[k]);
    }
    players.push_back(std::move(p));
  }
  return players;
}

}  // namespace

int main() {
  using namespace zsky;
  const auto players = MakeSeason(20'000, 2014);
  const double max_stat[kStats] = {40, 18, 13, 3, 4, 0.75, 42};

  // Maximization -> minimization: coordinate = 1 - stat/max.
  const Quantizer quantizer(16);
  std::vector<double> values;
  values.reserve(players.size() * kStats);
  for (const Player& p : players) {
    for (uint32_t k = 0; k < kStats; ++k) {
      values.push_back(1.0 - p.stats[k] / max_stat[k]);
    }
  }
  const PointSet points = quantizer.QuantizeAll(values, kStats);

  // Compare the heuristic and dominance groupings on this 7-d workload.
  for (const PartitioningScheme scheme :
       {PartitioningScheme::kNaiveZ, PartitioningScheme::kZhg,
        PartitioningScheme::kZdg}) {
    ExecutorOptions options;
    options.partitioning = scheme;
    options.num_groups = 8;
    options.bits = quantizer.bits();
    const SkylineQueryResult result =
        ParallelSkylineExecutor(options).Execute(points);
    std::printf("%-8s total %7.1f ms  candidates %6zu  skyline %5zu\n",
                std::string(PartitioningSchemeName(scheme)).c_str(),
                result.metrics.total_ms, result.metrics.candidates,
                result.skyline.size());
  }

  // Show a few all-stars (recompute once for the report).
  ExecutorOptions options;
  options.bits = quantizer.bits();
  const SkylineQueryResult result =
      ParallelSkylineExecutor(options).Execute(points);
  std::printf("\nall-star shortlist (%zu players):\n", result.skyline.size());
  std::printf("%-12s", "name");
  for (const char* s : kStatNames) std::printf(" %6s", s);
  std::printf("\n");
  const size_t show = std::min<size_t>(8, result.skyline.size());
  for (size_t i = 0; i < show; ++i) {
    const Player& p = players[result.skyline[i]];
    std::printf("%-12s", p.name.c_str());
    for (uint32_t k = 0; k < kStats; ++k) std::printf(" %6.2f", p.stats[k]);
    std::printf("\n");
  }
  return 0;
}
