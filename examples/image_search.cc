// Image search: skyline filtering over high-dimensional feature vectors,
// the paper's Section 6 real-world scenario (NUS-WIDE / Flickr style).
//
// Each image is a 225-d color-moment descriptor; the "skyline images" are
// those not dominated on every feature distance simultaneously — a
// diversity-preserving candidate set for downstream ranking. This example
// exercises the multi-word Z-address paths (225 dims x 16 bits = 57
// 64-bit words per address).

#include <cstdio>

#include "zsky.h"

int main() {
  using namespace zsky;

  constexpr size_t kImages = 20'000;
  const std::vector<double> features = GenerateNuswLike(kImages, 11);
  const Quantizer quantizer(16);
  const PointSet points = quantizer.QuantizeAll(features, 225);
  std::printf("corpus: %zu images, %u-d features\n", points.size(),
              points.dim());

  ExecutorOptions options;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.bits = quantizer.bits();
  const SkylineQueryResult result =
      ParallelSkylineExecutor(options).Execute(points);

  std::printf("skyline images: %zu (%.1f%% of corpus)\n",
              result.skyline.size(),
              100.0 * result.skyline.size() / points.size());
  std::printf("phases: preprocess %.1f ms, candidates %.1f ms, merge %.1f "
              "ms, total %.1f ms\n",
              result.metrics.preprocess_ms, result.metrics.job1_ms,
              result.metrics.job2_ms, result.metrics.total_ms);
  std::printf("job 1 shuffled %zu records (%.2f MiB simulated traffic)\n",
              result.metrics.job1.shuffle_records,
              result.metrics.job1.shuffle_bytes / (1024.0 * 1024.0));
  const auto wave = result.metrics.job1.reduce_stats();
  std::printf("reduce-wave balance: max %.1f ms / mean %.1f ms (skew %.2f)\n",
              wave.max_ms, wave.mean_ms, wave.skew);
  return 0;
}
