// Travel portal: one dataset, four skyline query flavours.
//
// A flight-search backend keeps offers as (price, duration, stops,
// departure-shift) — all minimized — and answers:
//   1. the plain skyline ("best trade-offs overall"),
//   2. a constrained skyline ("...under $400 and at most 1 stop"),
//   3. a subspace skyline ("I only care about price and duration"),
//   4. a 3-skyband ranked top-5 ("a deeper shortlist, best first").

#include <algorithm>
#include <cstdio>

#include "zsky.h"

namespace {

using namespace zsky;

constexpr uint32_t kDim = 4;
const char* kCriteria[kDim] = {"price", "duration", "stops", "dep-shift"};

PointSet MakeOffers(size_t n, const Quantizer& quantizer, uint64_t seed) {
  Rng rng(seed);
  PointSet offers(kDim);
  offers.Reserve(n);
  std::vector<Coord> row(kDim);
  for (size_t i = 0; i < n; ++i) {
    // Nonstop flights are shorter but pricier; red-eyes are cheaper.
    const double stops = rng.NextBounded(3);          // 0..2 stops.
    const double dep_shift = rng.NextDouble();        // Hours off-peak.
    const double duration =
        std::clamp(0.25 + 0.2 * stops + 0.1 * rng.NextGaussian(), 0.0, 1.0);
    const double price = std::clamp(
        0.8 - 0.18 * stops - 0.15 * dep_shift + 0.1 * rng.NextGaussian(),
        0.0, 1.0);
    row[0] = quantizer.Quantize(price);
    row[1] = quantizer.Quantize(duration);
    row[2] = quantizer.Quantize(stops / 3.0);
    row[3] = quantizer.Quantize(dep_shift);
    offers.Append(row);
  }
  return offers;
}

void PrintOffer(const PointSet& offers, const Quantizer& quantizer,
                uint32_t row) {
  std::printf("  offer %6u:", row);
  for (uint32_t k = 0; k < kDim; ++k) {
    std::printf(" %s=%.2f", kCriteria[k],
                quantizer.Dequantize(offers[row][k]));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const Quantizer quantizer(16);
  const PointSet offers = MakeOffers(150'000, quantizer, 13);
  const ZOrderCodec codec(kDim, quantizer.bits());
  std::printf("offers: %zu, criteria: price/duration/stops/dep-shift "
              "(all minimized)\n\n",
              offers.size());

  // 1. Plain skyline via the planned pipeline.
  ExecutorOptions base;
  base.bits = quantizer.bits();
  const PlanDecision plan = PlanQuery(offers, base);
  std::printf("planner: %s (estimated skyline fraction %.1f%%)\n",
              plan.rationale.c_str(),
              100.0 * plan.estimated_skyline_fraction);
  const SkylineQueryResult result =
      ParallelSkylineExecutor(plan.options).Execute(offers);
  std::printf("1. skyline: %zu offers (%s)\n", result.skyline.size(),
              FormatRunSummary(plan.options, offers.size(), result).c_str());

  // 2. Constrained skyline: price <= 0.4 (about $400 normalized), at most
  //    1 stop, anything else unconstrained.
  RTree rtree(offers);
  std::vector<Coord> lo(kDim, 0);
  std::vector<Coord> hi{quantizer.Quantize(0.4), quantizer.max_value(),
                        quantizer.Quantize(1.0 / 3.0),
                        quantizer.max_value()};
  const SkylineIndices constrained =
      ConstrainedSkyline(codec, offers, rtree, lo, hi);
  std::printf("2. constrained skyline (price<=0.4, stops<=1): %zu offers\n",
              constrained.size());

  // 3. Subspace skyline: price & duration only.
  const std::vector<uint32_t> dims{0, 1};
  const SkylineIndices subspace = SubspaceSkyline(offers, dims);
  std::printf("3. subspace skyline (price, duration): %zu offers\n",
              subspace.size());

  // 4. 3-skyband, ranked, top 5.
  SkybandOptions band_options;
  band_options.k = 3;
  band_options.bits = quantizer.bits();
  const SkylineQueryResult band = DistributedSkyband(offers, band_options);
  const auto top =
      TopKSkyline(offers, band.skyline, 5, SkylineRank::kScoreSum);
  std::printf("4. 3-skyband: %zu offers; top 5 by score:\n",
              band.skyline.size());
  for (const RankedPoint& rp : top) PrintOffer(offers, quantizer, rp.row);

  // Sanity: the library can verify its own answer.
  const bool ok = !VerifySkyline(offers, result.skyline).has_value();
  std::printf("\nskyline verified: %s\n", ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
