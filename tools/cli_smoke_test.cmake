# CLI smoke test driven by CTest: gen -> query (+plan/topk) -> skyband.
set(DATA "${WORK_DIR}/cli_smoke.csv")

execute_process(
  COMMAND ${CLI} gen --dist anti --n 3000 --dim 4 --seed 7 --out ${DATA}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "gen failed: ${rc}")
endif()

execute_process(
  COMMAND ${CLI} query --in ${DATA} --scheme zdg --groups 6 --metrics
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "query failed: ${rc}\n${err}")
endif()
if(NOT out MATCHES "skyline rows")
  message(FATAL_ERROR "query output missing skyline rows:\n${out}")
endif()
if(NOT err MATCHES "candidates")
  message(FATAL_ERROR "metrics output missing:\n${err}")
endif()

execute_process(
  COMMAND ${CLI} query --in ${DATA} --plan --topk 3 --json
  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "planned query failed: ${rc}\n${err}")
endif()
if(NOT out MATCHES "top-3")
  message(FATAL_ERROR "topk output missing:\n${out}")
endif()
if(NOT err MATCHES "\"sim_total_ms\"")
  message(FATAL_ERROR "json output missing:\n${err}")
endif()

execute_process(
  COMMAND ${CLI} skyband --in ${DATA} --k 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "skyband failed: ${rc}")
endif()
if(NOT out MATCHES "2-skyband rows")
  message(FATAL_ERROR "skyband output missing:\n${out}")
endif()

file(REMOVE ${DATA})
message(STATUS "cli smoke test passed")
