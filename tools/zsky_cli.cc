// zsky command-line tool: generate datasets and run skyline queries on
// CSV files with any strategy combination.
//
//   zsky_cli gen   --dist <indep|corr|anti> --n <rows> --dim <d>
//                  [--seed S] [--out file.csv|file.zsc]
//   zsky_cli convert --in file.csv --out file.zsc [--max col1,col3]
//   zsky_cli query --in file.csv|file.zsc [--scheme grid|angle|quadtree|
//                  naive-z|zhg|zdg] [--local sb|zs] [--merge sb|zs|zm]
//                  [--groups M] [--max col1,col3] [--topk K]
//                  [--rank count|sum] [--lo a,b,...] [--hi a,b,...]
//                  [--dims c0,c2] [--flip c1] [--k K] [--budget BYTES]
//                  [--metrics]
//
// `--max` lists columns to maximize (everything else is minimized).
//
// Query variants (`query` and `serve`, see docs/queries.md): `--lo`/`--hi`
// give an inclusive constraint box in the quantized coordinate domain
// [0, 2^bits-1], one value per column; `--dims` restricts dominance to a
// column subset (subspace skyline); `--flip` flips the dominance
// direction of listed columns at query time (unlike `--max`, which bakes
// the flip into the stored coordinates); `--k` asks for the k-skyband
// (points with fewer than k dominators).
//
// `.zsc` inputs are mmap'd columnar datasets (docs/storage.md): the query
// runs out of core, and `--budget` bounds both the shuffle arena and the
// mapping's resident set. `gen --out file.zsc` streams the dataset to disk
// in chunks, so generating 50M+ rows never materializes them in memory.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "zsky.h"

namespace {

using namespace zsky;

[[noreturn]] void Usage(const char* error = nullptr) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage:\n"
               "  zsky_cli gen   --dist indep|corr|anti --n N --dim D"
               " [--seed S] [--out FILE[.zsc]]\n"
               "  zsky_cli convert --in FILE.csv|.zpt --out FILE.zsc"
               " [--max c0,c2,...]\n"
               "  zsky_cli query --in FILE[.zsc] [--scheme zdg] [--local zs]"
               " [--merge zm]\n"
               "                 [--groups M] [--max c0,c2,...]"
               " [--topk K] [--rank count|sum]\n"
               "                 [--lo a,b,...] [--hi a,b,...]"
               " [--dims c0,c2,...] [--flip c1,...] [--k K]\n"
               "                 [--budget BYTES] [--readahead 0|1] [--plan]"
               " [--metrics]"
               " [--json] [--trace-out FILE]\n"
               "  zsky_cli skyband --in FILE --k K [--groups M]"
               " [--metrics]\n"
               "  zsky_cli insert --in FILE[.zsc]"
               " --points \"a,b,...;c,d,...\"|--add FILE\n"
               "                 [--scheme zdg] [--local zs] [--merge zm]"
               " [--groups M] [--merge-after]\n"
               "  zsky_cli delete --in FILE[.zsc] --ids 1,2,3,...\n"
               "                 [--scheme zdg] [--local zs] [--merge zm]"
               " [--groups M] [--merge-after]\n"
               "  zsky_cli serve --in FILE[.zsc] [--repeat N]"
               " [--concurrency C] [--mutate-mix PCT]\n"
               "                 [--scheme zdg] [--local zs] [--merge zm]"
               " [--groups M] [--json]\n"
               "                 [--lo a,b,...] [--hi a,b,...]"
               " [--dims c0,c2,...] [--flip c1,...] [--k K]\n"
               "                 [--budget BYTES] [--readahead 0|1]"
               " [--adaptive]"
               " [--replan-threshold T]\n"
               "                 [--calibration-file FILE]"
               " [--stats-every N] [--trace-out FILE]\n"
               "  zsky_cli cpu\n");
  std::exit(2);
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv,
                                              int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) Usage(("unexpected argument " + arg).c_str());
    arg = arg.substr(2);
    if (arg == "metrics" || arg == "json" || arg == "plan" ||
        arg == "adaptive" || arg == "merge-after") {
      flags[arg] = "1";
      continue;
    }
    if (i + 1 >= argc) Usage(("missing value for --" + arg).c_str());
    flags[arg] = argv[++i];
  }
  return flags;
}

std::string Flag(const std::map<std::string, std::string>& flags,
                 const std::string& name, const std::string& fallback) {
  auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

// --trace-out support, shared by `query` and `serve`. Arms the global
// tracer before the run; writes the Chrome trace_event JSON after it.
std::string TraceBegin(const std::map<std::string, std::string>& flags) {
  const std::string path = Flag(flags, "trace-out", "");
  if (!path.empty()) trace::Tracer::Global().SetEnabled(true);
  return path;
}

void TraceEnd(const std::string& path) {
  if (path.empty()) return;
  const trace::Tracer& tracer = trace::Tracer::Global();
  if (!tracer.WriteChromeTrace(path)) {
    std::fprintf(stderr, "cannot write trace to %s\n", path.c_str());
    return;
  }
  std::fprintf(stderr,
               "trace: %zu spans -> %s (open in chrome://tracing or "
               "https://ui.perfetto.dev)\n",
               tracer.Snapshot().size(), path.c_str());
}

int RunGen(const std::map<std::string, std::string>& flags) {
  const std::string dist_name = Flag(flags, "dist", "indep");
  Distribution dist;
  if (dist_name == "indep") {
    dist = Distribution::kIndependent;
  } else if (dist_name == "corr") {
    dist = Distribution::kCorrelated;
  } else if (dist_name == "anti") {
    dist = Distribution::kAnticorrelated;
  } else {
    Usage("unknown --dist");
  }
  const size_t n = std::strtoull(Flag(flags, "n", "10000").c_str(), nullptr,
                                 10);
  const auto dim = static_cast<uint32_t>(
      std::strtoul(Flag(flags, "dim", "5").c_str(), nullptr, 10));
  const uint64_t seed =
      std::strtoull(Flag(flags, "seed", "42").c_str(), nullptr, 10);
  if (n == 0 || dim == 0) Usage("--n and --dim must be positive");

  const std::string out = Flag(flags, "out", "");
  if (HasSuffix(out, ".zsc")) {
    // Streaming columnar output: quantized chunks go straight to the
    // ColumnarWriter, so --n 50000000 never materializes 50M rows —
    // peak memory is one chunk regardless of N. Each chunk is generated
    // under seed + chunk index (deterministic in the flags).
    const Quantizer quantizer(16);
    constexpr size_t kGenChunkRows = 1 << 20;
    ColumnarWriter writer(out, dim, n, quantizer.bits());
    for (size_t begin = 0; begin < n && writer.ok();
         begin += kGenChunkRows) {
      const size_t rows = std::min(kGenChunkRows, n - begin);
      const PointSet chunk = GenerateQuantized(
          dist, rows, dim, seed + begin / kGenChunkRows, quantizer);
      writer.AppendRows(chunk.raw().data(), chunk.size());
    }
    if (!writer.ok() || !writer.Finish()) {
      std::fprintf(stderr, "cannot write %s: %s\n", out.c_str(),
                   writer.error().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu rows x %u cols to %s (columnar)\n", n,
                 dim, out.c_str());
    return 0;
  }

  CsvTable table;
  table.dim = dim;
  table.rows = n;
  for (uint32_t c = 0; c < dim; ++c) {
    table.columns.push_back("col" + std::to_string(c));
  }
  table.values = GenerateSynthetic(dist, n, dim, seed);
  const std::string csv = WriteCsv(table, CsvOptions{});

  if (out.empty()) {
    std::fwrite(csv.data(), 1, csv.size(), stdout);
  } else {
    std::FILE* file = std::fopen(out.c_str(), "wb");
    if (file == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::fwrite(csv.data(), 1, csv.size(), file);
    std::fclose(file);
    std::fprintf(stderr, "wrote %zu rows x %u cols to %s\n", n, dim,
                 out.c_str());
  }
  return 0;
}

std::optional<PartitioningScheme> SchemeFromName(const std::string& name) {
  if (name == "grid") return PartitioningScheme::kGrid;
  if (name == "angle") return PartitioningScheme::kAngle;
  if (name == "quadtree") return PartitioningScheme::kQuadTree;
  if (name == "naive-z") return PartitioningScheme::kNaiveZ;
  if (name == "zhg") return PartitioningScheme::kZhg;
  if (name == "zdg") return PartitioningScheme::kZdg;
  return std::nullopt;
}

// Shared by `query` and `serve`: strategy combination + group count from
// flags.
ExecutorOptions StrategyFromFlags(
    const std::map<std::string, std::string>& flags, uint32_t bits) {
  ExecutorOptions options;
  const auto scheme = SchemeFromName(Flag(flags, "scheme", "zdg"));
  if (!scheme.has_value()) Usage("unknown --scheme");
  options.partitioning = *scheme;
  const std::string local = Flag(flags, "local", "zs");
  if (local == "sb") {
    options.local = LocalAlgorithm::kSortBased;
  } else if (local == "zs") {
    options.local = LocalAlgorithm::kZSearch;
  } else {
    Usage("unknown --local");
  }
  const std::string merge = Flag(flags, "merge", "zm");
  if (merge == "sb") {
    options.merge = MergeAlgorithm::kSortBased;
  } else if (merge == "zs") {
    options.merge = MergeAlgorithm::kZSearch;
  } else if (merge == "zm") {
    options.merge = MergeAlgorithm::kZMerge;
  } else {
    Usage("unknown --merge");
  }
  options.num_groups = static_cast<uint32_t>(
      std::strtoul(Flag(flags, "groups", "8").c_str(), nullptr, 10));
  options.bits = bits;
  // --readahead 0|1: async prefetch on `.zsc` scans (docs/storage.md).
  // On by default; 0 is the cold-run ablation baseline. Harmless for CSV
  // inputs (heap views have no prefetch hook to disarm).
  options.readahead = Flag(flags, "readahead", "1") != "0";
  return options;
}

// Comma-separated list of non-negative integers ("3,1,4").
std::vector<uint32_t> ParseUintList(const std::string& value,
                                    const char* flag_name) {
  std::vector<uint32_t> out;
  size_t pos = 0;
  while (pos < value.size()) {
    const size_t comma = value.find(',', pos);
    const std::string token = value.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? value.size() : comma + 1;
    if (token.empty()) continue;
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(token.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      Usage(("bad value in --" + std::string(flag_name) + ": " + token)
                .c_str());
    }
    out.push_back(static_cast<uint32_t>(parsed));
  }
  return out;
}

// Query-variant flags (`--lo`/`--hi`/`--dims`/`--flip`/`--k`), shared by
// `query` and `serve`. Box bounds are in the quantized coordinate domain;
// `--dims`/`--flip` take column indices.
QueryDesc DescFromFlags(const std::map<std::string, std::string>& flags,
                        uint32_t dim) {
  QueryDesc desc;
  const std::string lo = Flag(flags, "lo", "");
  const std::string hi = Flag(flags, "hi", "");
  if (lo.empty() != hi.empty()) Usage("--lo and --hi must be given together");
  if (!lo.empty()) {
    desc.box_lo = ParseUintList(lo, "lo");
    desc.box_hi = ParseUintList(hi, "hi");
    if (desc.box_lo.size() != dim || desc.box_hi.size() != dim) {
      Usage("--lo/--hi need one value per column");
    }
  }
  desc.dims = ParseUintList(Flag(flags, "dims", ""), "dims");
  std::sort(desc.dims.begin(), desc.dims.end());
  desc.dims.erase(std::unique(desc.dims.begin(), desc.dims.end()),
                  desc.dims.end());
  const std::vector<uint32_t> flip =
      ParseUintList(Flag(flags, "flip", ""), "flip");
  if (!flip.empty()) {
    desc.maximize.assign(dim, 0);
    for (uint32_t d : flip) {
      if (d >= dim) Usage("--flip column out of range");
      desc.maximize[d] = 1;
    }
  }
  desc.k = static_cast<uint32_t>(
      std::strtoul(Flag(flags, "k", "1").c_str(), nullptr, 10));
  for (uint32_t d : desc.dims) {
    if (d >= dim) Usage("--dims column out of range");
  }
  if (desc.k == 0) Usage("--k must be >= 1");
  desc.Canonicalize();
  return desc;
}

// `--max` parsing (column names or indices), shared by query and convert.
std::vector<uint32_t> ParseMaximize(
    const std::map<std::string, std::string>& flags, const CsvTable& table) {
  std::vector<uint32_t> maximize;
  const std::string max_flag = Flag(flags, "max", "");
  size_t pos = 0;
  while (pos < max_flag.size()) {
    const size_t comma = max_flag.find(',', pos);
    const std::string token = max_flag.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? max_flag.size() : comma + 1;
    if (token.empty()) continue;
    // Accept column names or indices.
    bool matched = false;
    for (uint32_t c = 0; c < table.dim; ++c) {
      if (table.columns[c] == token) {
        maximize.push_back(c);
        matched = true;
        break;
      }
    }
    if (!matched) {
      char* end = nullptr;
      const unsigned long index = std::strtoul(token.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || index >= table.dim) {
        Usage(("unknown column in --max: " + token).c_str());
      }
      maximize.push_back(static_cast<uint32_t>(index));
    }
  }
  return maximize;
}

// Smallest bit width that holds every coordinate of `points` (>= 1).
uint32_t BitsForCoords(const PointSet& points) {
  Coord max_coord = 0;
  for (const Coord c : points.raw()) max_coord = std::max(max_coord, c);
  uint32_t bits = 1;
  while (bits < 32 && (max_coord >> bits) != 0) ++bits;
  return bits;
}

// csv/.zpt -> .zsc conversion. CSV goes through the same quantization as
// `query` (Quantizer(16) + --max), so converting and then querying the
// .zsc gives bit-identical skylines to querying the CSV directly.
int RunConvert(const std::map<std::string, std::string>& flags) {
  const std::string in = Flag(flags, "in", "");
  const std::string out = Flag(flags, "out", "");
  if (in.empty() || out.empty()) Usage("convert requires --in and --out");
  if (!HasSuffix(out, ".zsc")) Usage("convert --out must end in .zsc");

  std::string error;
  PointSet points(1);
  uint32_t bits = 16;
  if (HasSuffix(in, ".zpt")) {
    auto loaded = ReadPointSetFile(in, &error);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "read error: %s\n", error.c_str());
      return 1;
    }
    points = std::move(*loaded);
    // .zpt carries no resolution metadata; record the tightest width that
    // covers the data.
    bits = BitsForCoords(points);
  } else {
    auto table = ReadCsvFile(in, CsvOptions{}, &error);
    if (!table.has_value()) {
      std::fprintf(stderr, "csv error: %s\n", error.c_str());
      return 1;
    }
    const Quantizer quantizer(16);
    points = TableToPoints(*table, ParseMaximize(flags, *table), quantizer);
    bits = quantizer.bits();
  }

  if (!WriteColumnarFile(out, points, bits, &error)) {
    std::fprintf(stderr, "convert error: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu rows x %u cols (%u bits) to %s\n",
               points.size(), points.dim(), bits, out.c_str());
  return 0;
}

// Out-of-core query path: mmap the .zsc and run the pipeline over its
// columnar view. No CSV table exists, so --max/--topk (which need raw
// column values) are rejected; quantization happened at convert time.
int RunQueryColumnar(const std::map<std::string, std::string>& flags,
                     const std::string& in) {
  if (flags.count("max") != 0 || flags.count("topk") != 0) {
    Usage("--max/--topk are csv-input features; bake --max in at convert "
          "time");
  }
  const size_t budget =
      std::strtoull(Flag(flags, "budget", "0").c_str(), nullptr, 10);
  ColumnarDataset::Options map_options;
  map_options.bounded_residency = budget > 0;
  map_options.readahead = Flag(flags, "readahead", "1") != "0";
  std::string error;
  const auto dataset = ColumnarDataset::Open(in, &error, map_options);
  if (dataset == nullptr) {
    std::fprintf(stderr, "zsc error: %s\n", error.c_str());
    return 1;
  }

  ExecutorOptions options = StrategyFromFlags(flags, dataset->bits());
  options.shuffle_memory_budget_bytes = budget;
  const QueryDesc desc = DescFromFlags(flags, dataset->view().dim());
  if (flags.count("plan") != 0) {
    const PlanChoice choice = ChoosePlan(dataset->view(), options, {}, &desc);
    options = choice.options;
    std::fprintf(stderr, "plan: %s\n", choice.rationale.c_str());
  }

  const std::string trace_path = TraceBegin(flags);
  const SkylineQueryResult result =
      ParallelSkylineExecutor(options).Execute(dataset->view(), desc);
  TraceEnd(trace_path);

  std::printf("skyline rows (%zu of %zu):\n", result.skyline.size(),
              dataset->size());
  for (uint32_t row : result.skyline) std::printf("%u\n", row);
  if (flags.count("metrics") != 0) {
    std::fprintf(stderr, "%s\n%s",
                 FormatRunSummary(options, dataset->size(), result).c_str(),
                 FormatPhaseMetrics(result.metrics).c_str());
  }
  if (flags.count("json") != 0) {
    std::fprintf(stderr, "%s\n",
                 MetricsToJson(result.metrics, &MetricsRegistry::Global())
                     .c_str());
  }
  return 0;
}

int RunQuery(const std::map<std::string, std::string>& flags) {
  const std::string in = Flag(flags, "in", "");
  if (in.empty()) Usage("query requires --in");
  if (HasSuffix(in, ".zsc")) return RunQueryColumnar(flags, in);
  std::string error;
  auto table = ReadCsvFile(in, CsvOptions{}, &error);
  if (!table.has_value()) {
    std::fprintf(stderr, "csv error: %s\n", error.c_str());
    return 1;
  }

  const Quantizer quantizer(16);
  const PointSet points =
      TableToPoints(*table, ParseMaximize(flags, *table), quantizer);

  ExecutorOptions options = StrategyFromFlags(flags, quantizer.bits());
  const QueryDesc desc = DescFromFlags(flags, points.dim());

  if (flags.count("plan") != 0) {
    // Cost-based plan selection: price every scheme/local/reducer-count
    // candidate over a sample and run the cheapest (under the query's
    // variant — a tight box shrinks the predicted volumes).
    const PlanChoice choice = ChoosePlan(points, options, {}, &desc);
    options = choice.options;
    std::fprintf(stderr, "plan: %s\n", choice.rationale.c_str());
    for (const PlanCandidateCost& cand : choice.candidates) {
      std::fprintf(stderr, "  candidate %-16s predicted %.3f ms\n",
                   cand.label.c_str(), cand.predicted_total_ms);
    }
  }

  const std::string trace_path = TraceBegin(flags);
  const SkylineQueryResult result =
      ParallelSkylineExecutor(options).Execute(points, desc);
  TraceEnd(trace_path);

  const size_t topk =
      std::strtoull(Flag(flags, "topk", "0").c_str(), nullptr, 10);
  if (topk > 0) {
    const std::string rank_name = Flag(flags, "rank", "count");
    const SkylineRank rank = rank_name == "sum" ? SkylineRank::kScoreSum
                                                : SkylineRank::kDominanceCount;
    const auto ranked = TopKSkyline(points, result.skyline, topk, rank);
    std::printf("top-%zu skyline rows by %s:\n", topk,
                std::string(SkylineRankName(rank)).c_str());
    for (const RankedPoint& rp : ranked) {
      std::printf("  row %u", rp.row);
      for (uint32_t c = 0; c < table->dim; ++c) {
        std::printf(" %s=%.6g", table->columns[c].c_str(),
                    table->values[rp.row * table->dim + c]);
      }
      std::printf("\n");
    }
  } else {
    std::printf("skyline rows (%zu of %zu):\n", result.skyline.size(),
                table->rows);
    for (uint32_t row : result.skyline) std::printf("%u\n", row);
  }

  if (flags.count("metrics") != 0) {
    std::fprintf(stderr, "%s\n%s",
                 FormatRunSummary(options, table->rows, result).c_str(),
                 FormatPhaseMetrics(result.metrics).c_str());
  }
  if (flags.count("json") != 0) {
    std::fprintf(stderr, "%s\n",
                 MetricsToJson(result.metrics, &MetricsRegistry::Global())
                     .c_str());
  }
  return 0;
}

int RunSkyband(const std::map<std::string, std::string>& flags) {
  const std::string in = Flag(flags, "in", "");
  if (in.empty()) Usage("skyband requires --in");
  std::string error;
  auto table = ReadCsvFile(in, CsvOptions{}, &error);
  if (!table.has_value()) {
    std::fprintf(stderr, "csv error: %s\n", error.c_str());
    return 1;
  }
  const Quantizer quantizer(16);
  const PointSet points = TableToPoints(*table, {}, quantizer);
  SkybandOptions options;
  options.k = static_cast<uint32_t>(
      std::strtoul(Flag(flags, "k", "2").c_str(), nullptr, 10));
  options.num_groups = static_cast<uint32_t>(
      std::strtoul(Flag(flags, "groups", "8").c_str(), nullptr, 10));
  options.bits = quantizer.bits();
  const SkylineQueryResult result = DistributedSkyband(points, options);
  std::printf("%u-skyband rows (%zu of %zu):\n", options.k,
              result.skyline.size(), table->rows);
  for (uint32_t row : result.skyline) std::printf("%u\n", row);
  if (flags.count("metrics") != 0) {
    std::fprintf(stderr, "%s", FormatPhaseMetrics(result.metrics).c_str());
  }
  return 0;
}

// Shared by `insert` and `delete` (docs/updates.md): a QueryService over
// --in — heap-resident for CSV, mmap'd for `.zsc` (mutations layer a heap
// delta over the read-only mapping; a merge streams a new `.zsc` beside
// it).
struct MutableService {
  std::unique_ptr<QueryService> service;
  size_t base_rows = 0;
  uint32_t dim = 1;
};

bool OpenMutableService(const std::map<std::string, std::string>& flags,
                        const std::string& in, MutableService* out) {
  std::string error;
  uint32_t bits = 16;
  PointSet points(1);
  const bool columnar = HasSuffix(in, ".zsc");
  if (columnar) {
    const auto peek = ColumnarDataset::Open(in, &error);
    if (peek == nullptr) {
      std::fprintf(stderr, "zsc error: %s\n", error.c_str());
      return false;
    }
    bits = peek->bits();
    out->base_rows = peek->size();
    out->dim = peek->view().dim();
  } else {
    auto table = ReadCsvFile(in, CsvOptions{}, &error);
    if (!table.has_value()) {
      std::fprintf(stderr, "csv error: %s\n", error.c_str());
      return false;
    }
    const Quantizer quantizer(16);
    points = TableToPoints(*table, ParseMaximize(flags, *table), quantizer);
    bits = quantizer.bits();
    out->base_rows = points.size();
    out->dim = points.dim();
  }
  QueryServiceOptions service_options;
  service_options.executor = StrategyFromFlags(flags, bits);
  out->service = std::make_unique<QueryService>(service_options);
  if (columnar) {
    if (!out->service->SetDatasetFile(in, &error)) {
      std::fprintf(stderr, "zsc error: %s\n", error.c_str());
      return false;
    }
  } else {
    out->service->SetDataset(std::move(points));
  }
  return true;
}

// Inline batch syntax: "a,b,...;c,d,..." — one point per ';' group.
PointSet ParsePointsArg(const std::string& value, uint32_t dim) {
  PointSet batch(dim);
  size_t pos = 0;
  while (pos < value.size()) {
    const size_t semi = value.find(';', pos);
    const std::string token = value.substr(
        pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? value.size() : semi + 1;
    if (token.empty()) continue;
    const std::vector<uint32_t> vals = ParseUintList(token, "points");
    if (vals.size() != dim) Usage("--points needs one value per column");
    std::vector<Coord> coords(vals.begin(), vals.end());
    batch.Append(coords);
  }
  return batch;
}

void PrintMutationSummary(const char* verb, const MutationResult& mr,
                          const QueryService& service) {
  const DeltaStats ds = service.delta_stats();
  std::fprintf(stderr,
               "%s: applied=%zu fast_path=%zu rejected=%zu first_id=%u"
               " merged=%d repair_partitions=%zu ms=%.3f\n"
               "delta: active=%d logical_rows=%zu alive_rows=%zu"
               " delta_rows=%zu base_dead=%zu band=%zu\n",
               verb, mr.applied, mr.fast_path, mr.rejected, mr.first_id,
               mr.merged ? 1 : 0, mr.repair_partitions, mr.ms,
               ds.active ? 1 : 0, ds.logical_rows, ds.alive_rows,
               ds.delta_rows, ds.base_dead, ds.band_size);
}

// `insert`: load --in, insert a batch (--points inline or --add file),
// print the updated skyline as logical row ids. --merge-after folds the
// delta into a compacted base before the query.
int RunInsert(const std::map<std::string, std::string>& flags) {
  const std::string in = Flag(flags, "in", "");
  if (in.empty()) Usage("insert requires --in");
  MutableService ms;
  if (!OpenMutableService(flags, in, &ms)) return 1;

  PointSet batch(ms.dim);
  const std::string points_arg = Flag(flags, "points", "");
  const std::string add = Flag(flags, "add", "");
  if (points_arg.empty() == add.empty()) {
    Usage("insert requires exactly one of --points / --add");
  }
  if (!points_arg.empty()) {
    batch = ParsePointsArg(points_arg, ms.dim);
  } else if (HasSuffix(add, ".zsc")) {
    std::string error;
    const auto dataset = ColumnarDataset::Open(add, &error);
    if (dataset == nullptr) {
      std::fprintf(stderr, "zsc error: %s\n", error.c_str());
      return 1;
    }
    batch = dataset->view().Materialize();
  } else {
    std::string error;
    auto table = ReadCsvFile(add, CsvOptions{}, &error);
    if (!table.has_value()) {
      std::fprintf(stderr, "csv error: %s\n", error.c_str());
      return 1;
    }
    batch = TableToPoints(*table, ParseMaximize(flags, *table),
                          Quantizer(16));
  }

  const MutationResult mr = ms.service->Insert(batch);
  if (!mr.ok) {
    std::fprintf(stderr, "insert error: %s\n", mr.error.c_str());
    return 1;
  }
  if (flags.count("merge-after") != 0) ms.service->Merge();
  const SkylineQueryResult result = ms.service->Query();
  const DeltaStats ds = ms.service->delta_stats();
  std::printf("skyline rows (%zu of %zu):\n", result.skyline.size(),
              ds.alive_rows);
  for (uint32_t row : result.skyline) std::printf("%u\n", row);
  PrintMutationSummary("insert", mr, *ms.service);
  return 0;
}

// `delete`: load --in, tombstone --ids (logical row ids), print the
// repaired skyline.
int RunDelete(const std::map<std::string, std::string>& flags) {
  const std::string in = Flag(flags, "in", "");
  if (in.empty()) Usage("delete requires --in");
  const std::vector<uint32_t> ids =
      ParseUintList(Flag(flags, "ids", ""), "ids");
  if (ids.empty()) Usage("delete requires --ids");
  MutableService ms;
  if (!OpenMutableService(flags, in, &ms)) return 1;

  const MutationResult mr = ms.service->Delete(ids);
  if (!mr.ok) {
    std::fprintf(stderr, "delete error: %s\n", mr.error.c_str());
    return 1;
  }
  if (flags.count("merge-after") != 0) ms.service->Merge();
  const SkylineQueryResult result = ms.service->Query();
  const DeltaStats ds = ms.service->delta_stats();
  std::printf("skyline rows (%zu of %zu):\n", result.skyline.size(),
              ds.alive_rows);
  for (uint32_t row : result.skyline) std::printf("%u\n", row);
  PrintMutationSummary("delete", mr, *ms.service);
  return 0;
}

// Serving mode: load a dataset once, answer --repeat queries through the
// QueryService (plan built by the first query, reused by the rest), and
// report cold/warm latency + sustained QPS. --concurrency > 1 issues the
// warm queries from that many client threads. --mutate-mix P turns ~P% of
// the warm operations into Insert/Delete batches against the live
// service (docs/updates.md), exercising the delta overlay under load.
int RunServe(const std::map<std::string, std::string>& flags) {
  const std::string in = Flag(flags, "in", "");
  if (in.empty()) Usage("serve requires --in");
  const bool columnar = HasSuffix(in, ".zsc");
  const size_t budget =
      std::strtoull(Flag(flags, "budget", "0").c_str(), nullptr, 10);
  std::string error;
  PointSet points(1);
  size_t total_rows = 0;
  uint32_t bits = 16;
  uint32_t dim = 1;
  if (columnar) {
    // Peek the header for the coordinate resolution; the service mmaps
    // the file itself via SetDatasetFile below.
    const auto peek = ColumnarDataset::Open(in, &error);
    if (peek == nullptr) {
      std::fprintf(stderr, "zsc error: %s\n", error.c_str());
      return 1;
    }
    bits = peek->bits();
    total_rows = peek->size();
    dim = peek->view().dim();
  } else {
    auto table = ReadCsvFile(in, CsvOptions{}, &error);
    if (!table.has_value()) {
      std::fprintf(stderr, "csv error: %s\n", error.c_str());
      return 1;
    }
    const Quantizer quantizer(16);
    points = TableToPoints(*table, {}, quantizer);
    bits = quantizer.bits();
    total_rows = points.size();
    dim = points.dim();
  }
  QueryRequest request;
  request.desc = DescFromFlags(flags, dim);

  const size_t repeat = std::max<size_t>(
      1, std::strtoull(Flag(flags, "repeat", "8").c_str(), nullptr, 10));
  const size_t concurrency = std::max<size_t>(
      1, std::strtoull(Flag(flags, "concurrency", "1").c_str(), nullptr, 10));
  // --stats-every N: print cumulative service stats after every N
  // completed warm queries (0 = off).
  const size_t stats_every =
      std::strtoull(Flag(flags, "stats-every", "0").c_str(), nullptr, 10);
  // --mutate-mix P: percentage of warm operations issued as mutations
  // (2/3 inserts, 1/3 deletes of previously inserted rows).
  const double mutate_mix =
      std::strtod(Flag(flags, "mutate-mix", "0").c_str(), nullptr);

  QueryServiceOptions service_options;
  service_options.executor = StrategyFromFlags(flags, bits);
  service_options.executor.shuffle_memory_budget_bytes = budget;
  service_options.max_in_flight =
      static_cast<uint32_t>(std::max<size_t>(concurrency, 1));
  // --adaptive: plan builds run the cost-based planner (ChoosePlan) and
  // replan when predicted-vs-actual stage error exceeds the threshold.
  service_options.adaptive_planning = flags.count("adaptive") != 0;
  service_options.replan_threshold = std::strtod(
      Flag(flags, "replan-threshold", "0.5").c_str(), nullptr);
  // --calibration-file: persist the learned cost-model constants across
  // restarts (loaded now, written on shutdown).
  service_options.calibration_file = Flag(flags, "calibration-file", "");
  QueryService service(service_options);
  if (columnar) {
    if (!service.SetDatasetFile(in, &error)) {
      std::fprintf(stderr, "zsc error: %s\n", error.c_str());
      return 1;
    }
  } else {
    service.SetDataset(std::move(points));
  }
  const std::string trace_path = TraceBegin(flags);

  // Cold query: pays the plan build.
  const SkylineQueryResult cold = service.Query(request);
  std::printf("skyline rows (%zu of %zu):\n", cold.skyline.size(),
              total_rows);
  for (uint32_t row : cold.skyline) std::printf("%u\n", row);

  // Warm operations: plan reused; issued from `concurrency` client
  // threads. With --mutate-mix some become Insert/Delete batches — the
  // skyline then legitimately drifts, so the result-stability check only
  // runs for the pure-read mix.
  const size_t warm_count = repeat - 1;
  std::vector<double> warm_ms(warm_count, 0.0);
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::mutex inserted_mu;
  std::vector<uint32_t> inserted_ids;
  const Coord serve_max_coord =
      bits >= 32 ? ~Coord{0} : ((Coord{1} << bits) - 1);
  auto mutate = [&](size_t i) {
    // Deterministic per-op splitmix: the mix is reproducible in the flags.
    uint64_t s = 0x9e3779b97f4a7c15ull * (i + 1);
    auto rng = [&s] {
      s += 0x9e3779b97f4a7c15ull;
      uint64_t z = s;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    if (i % 3 != 2) {
      // Insert a small batch biased toward the dominated region (upper
      // half of the domain) so the sample-skyline fast path gets traffic.
      PointSet batch(dim);
      std::vector<Coord> p(dim);
      for (size_t r = 0; r < 8; ++r) {
        for (uint32_t d = 0; d < dim; ++d) {
          const Coord half = serve_max_coord / 2;
          p[d] = half + static_cast<Coord>(rng() % (half + 1));
        }
        batch.Append(p);
      }
      const MutationResult mr = service.Insert(batch);
      if (mr.ok && mr.applied > 0) {
        std::lock_guard<std::mutex> lock(inserted_mu);
        for (size_t r = 0; r < mr.applied; ++r) {
          inserted_ids.push_back(mr.first_id + static_cast<uint32_t>(r));
        }
        // A merge compacts ids; stop deleting by stale id after one.
        if (mr.merged) inserted_ids.clear();
      }
    } else {
      std::vector<uint32_t> ids;
      {
        std::lock_guard<std::mutex> lock(inserted_mu);
        for (size_t r = 0; r < 4 && !inserted_ids.empty(); ++r) {
          ids.push_back(inserted_ids.back());
          inserted_ids.pop_back();
        }
      }
      if (!ids.empty()) service.Delete(ids);
    }
  };
  Stopwatch warm_watch;
  auto client = [&] {
    for (;;) {
      const size_t i = next.fetch_add(1);
      if (i >= warm_count) return;
      if (mutate_mix > 0.0 &&
          static_cast<double>((i * 2654435761u) % 100) < mutate_mix) {
        Stopwatch op_watch;
        mutate(i);
        warm_ms[i] = op_watch.ElapsedMs();
        completed.fetch_add(1);
        continue;
      }
      const SkylineQueryResult warm = service.Query(request);
      warm_ms[i] = warm.metrics.total_ms;
      if (mutate_mix == 0.0 && warm.skyline != cold.skyline) {
        mismatches.fetch_add(1);
      }
      const size_t done = completed.fetch_add(1) + 1;
      if (stats_every > 0 && done % stats_every == 0) {
        const QueryService::Stats snap = service.stats();
        MetricsRegistry& registry = MetricsRegistry::Global();
        std::fprintf(stderr,
                     "stats[%zu]: queries=%zu plan_builds=%zu replans=%zu"
                     " peak_in_flight=%zu query_ms_total=%.3f"
                     " avg_ms=%.3f morsels=%llu stolen=%llu\n",
                     done, snap.queries, snap.plan_builds, snap.replans,
                     snap.peak_in_flight, snap.query_ms_total,
                     snap.queries > 0
                         ? snap.query_ms_total /
                               static_cast<double>(snap.queries)
                         : 0.0,
                     static_cast<unsigned long long>(
                         registry.counter("morsels_total").value()),
                     static_cast<unsigned long long>(
                         registry.counter("tasks_stolen").value()));
      }
    }
  };
  std::vector<std::thread> clients;
  for (size_t c = 0; c < std::min(concurrency, std::max<size_t>(warm_count, 1));
       ++c) {
    clients.emplace_back(client);
  }
  for (std::thread& t : clients) t.join();
  const double warm_wall_ms = warm_watch.ElapsedMs();

  double warm_avg = 0.0;
  for (double ms : warm_ms) warm_avg += ms;
  if (warm_count > 0) warm_avg /= static_cast<double>(warm_count);
  const double qps =
      warm_count > 0 && warm_wall_ms > 0.0
          ? static_cast<double>(warm_count) / (warm_wall_ms / 1000.0)
          : 0.0;
  const QueryService::Stats stats = service.stats();

  std::fprintf(stderr,
               "serve: %zu queries (%zu warm, concurrency %zu)\n"
               "  cold_ms=%.3f (plan build %.3f)  warm_avg_ms=%.3f"
               "  qps=%.1f\n"
               "  plan_builds=%zu replans=%zu peak_in_flight=%zu"
               " mismatches=%zu\n",
               repeat, warm_count, concurrency, cold.metrics.total_ms,
               cold.metrics.preprocess_ms, warm_avg, qps, stats.plan_builds,
               stats.replans, stats.peak_in_flight, mismatches.load());
  if (mutate_mix > 0.0) {
    const DeltaStats ds = service.delta_stats();
    std::fprintf(stderr,
                 "  mutate: inserts=%zu deletes=%zu fast_path=%zu"
                 " merges=%zu repairs=%zu plan_patches=%zu\n"
                 "  delta: active=%d logical_rows=%zu alive_rows=%zu"
                 " delta_rows=%zu band=%zu\n",
                 stats.inserts, stats.deletes, stats.fast_path_inserts,
                 stats.merges, stats.repairs, stats.plan_patches,
                 ds.active ? 1 : 0, ds.logical_rows, ds.alive_rows,
                 ds.delta_rows, ds.band_size);
  }
  TraceEnd(trace_path);
  if (flags.count("json") != 0) {
    std::fprintf(stderr, "%s\n",
                 MetricsToJson(cold.metrics, &MetricsRegistry::Global())
                     .c_str());
  }
  return mismatches.load() == 0 ? 0 : 1;
}

// Prints the host's SIMD features and the dispatch tier queries will run
// with (honors ZSKY_FORCE_ISA). `scripts/check.sh simd` parses this to
// skip tiers the host cannot run.
int RunCpu() {
  const CpuFeatures& features = HostCpuFeatures();
  std::printf("sse42=%d avx2=%d bmi2=%d active=%s bmi2_codec=%d\n",
              features.sse42 ? 1 : 0, features.avx2 ? 1 : 0,
              features.bmi2 ? 1 : 0, std::string(IsaName(ActiveIsa())).c_str(),
              UseBmi2Codec() ? 1 : 0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) Usage();
  const std::string command = argv[1];
  const auto flags = ParseFlags(argc, argv, 2);
  if (command == "gen") return RunGen(flags);
  if (command == "convert") return RunConvert(flags);
  if (command == "query") return RunQuery(flags);
  if (command == "skyband") return RunSkyband(flags);
  if (command == "insert") return RunInsert(flags);
  if (command == "delete") return RunDelete(flags);
  if (command == "serve") return RunServe(flags);
  if (command == "cpu") return RunCpu();
  Usage(("unknown command " + command).c_str());
}
