// Query-variant bench: constraint-selectivity sweep over the desc-aware
// pipeline. For each box selectivity the constrained path (warm prepared
// plan + RZ-region pruning + per-point box test, docs/queries.md) races
// what a desc-less system would do with the same warm plan: run the full
// skyline and post-filter its rows to the box. That baseline is not even
// correct in general — an in-box point dominated only by out-of-box
// points belongs to the constrained skyline but never survives the full
// one — which is exactly why QueryDesc pushes the box into the mapper
// instead. A second, correct baseline (scan-filter the dataset into the
// box, rerun the pipeline cold over the survivors) supplies the parity
// cross-check and an informational column. Self-checks: parity at every
// sweep point, structural pruning (regions_pruned_by_box > 0) and a win
// over full-skyline-then-filter at <= 10% selectivity. Emits
// BENCH_queries.json; the `scripts/check.sh queries` lane gates >10%
// regressions of the headline 10%-selectivity latency against the
// committed baseline.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/query_plan.h"

namespace zsky::bench {
namespace {

constexpr size_t kN = 200000;
constexpr uint32_t kDim = 6;
constexpr Coord kMaxCoord = (1u << kBits) - 1;
constexpr int kReps = 3;
constexpr double kSelectivities[] = {0.01, 0.10, 0.50, 1.00};

ExecutorOptions QueryOptions() {
  ExecutorOptions options;
  options.bits = kBits;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.num_map_tasks = 16;
  options.num_threads = 4;
  return options;
}

QueryDesc BoxDesc(double selectivity) {
  QueryDesc desc;
  if (selectivity >= 1.0) return desc;
  desc.box_lo.assign(kDim, 0);
  desc.box_hi.assign(kDim, kMaxCoord);
  // Independent uniform coordinates: constraining dim 0 to fraction f of
  // its range keeps ~f of the points.
  desc.box_hi[0] = static_cast<Coord>(selectivity * kMaxCoord);
  return desc;
}

struct SweepPoint {
  double selectivity = 1.0;
  double measured_selectivity = 1.0;
  double constrained_ms = 0.0;  // Warm plan + desc-aware pipeline.
  double fullfilter_ms = 0.0;   // Warm full skyline + box post-filter.
  double rerun_ms = 0.0;        // Scan-filter + cold pipeline (correct).
  size_t regions_pruned = 0;
  size_t dropped_by_box = 0;
  size_t skyline = 0;
  bool identical = false;
};

SweepPoint RunSweepPoint(const PointSet& points, const PreparedPlan& plan,
                         const ParallelSkylineExecutor& executor,
                         double selectivity) {
  SweepPoint sp;
  sp.selectivity = selectivity;
  const QueryDesc desc = BoxDesc(selectivity);

  // Constrained path: the desc rides the warm plan.
  SkylineQueryResult constrained;
  for (int r = 0; r < kReps; ++r) {
    SkylineQueryResult result = executor.ExecuteWithPlan(plan, points, desc);
    if (r == 0 || result.metrics.total_ms < constrained.metrics.total_ms) {
      constrained = std::move(result);
    }
  }
  sp.constrained_ms = constrained.metrics.total_ms;
  sp.regions_pruned = constrained.metrics.regions_pruned_by_box;
  sp.dropped_by_box = constrained.metrics.dropped_by_box;
  sp.skyline = constrained.skyline.size();

  // Gate baseline: the same warm plan, desc ignored — full skyline, then
  // drop out-of-box rows. What a pipeline without QueryDesc support would
  // serve (and in general an under-approximation of the true answer).
  for (int r = 0; r < kReps; ++r) {
    Stopwatch watch;
    const SkylineQueryResult full = executor.ExecuteWithPlan(plan, points);
    size_t kept = 0;
    for (uint32_t row : full.skyline) {
      if (desc.InBox(points[row])) ++kept;
    }
    const double ms = watch.ElapsedMs();
    if (r == 0 || ms < sp.fullfilter_ms) sp.fullfilter_ms = ms;
    (void)kept;
  }

  // Correct baseline (parity cross-check): materialize the in-box subset,
  // then answer with the full pipeline end to end (plan build included —
  // the subset is a new dataset every query, so nothing can be reused).
  SkylineIndices reference;
  for (int r = 0; r < kReps; ++r) {
    Stopwatch watch;
    std::vector<uint32_t> keep;
    keep.reserve(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      if (desc.InBox(points[i])) keep.push_back(static_cast<uint32_t>(i));
    }
    const PointSet subset = PointSet::Gather(points, keep);
    SkylineIndices rows = executor.Execute(subset).skyline;
    for (uint32_t& row : rows) row = keep[row];
    const double ms = watch.ElapsedMs();
    if (r == 0 || ms < sp.rerun_ms) {
      sp.rerun_ms = ms;
      reference = std::move(rows);
    }
    if (r == 0) {
      sp.measured_selectivity =
          static_cast<double>(keep.size()) / static_cast<double>(points.size());
    }
  }

  std::sort(reference.begin(), reference.end());
  SkylineIndices got = constrained.skyline;
  std::sort(got.begin(), got.end());
  sp.identical = got == reference;
  return sp;
}

void WriteJson(const char* path, const std::vector<SweepPoint>& sweep,
               bool pass) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("!! cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": {\"n\": %zu, \"dim\": %u, "
               "\"distribution\": \"independent\", \"strategy\": \"%s\"},\n",
               kN, kDim, QueryOptions().Label().c_str());
  std::fprintf(f, "  \"sweep\": [\n");
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& sp = sweep[i];
    std::fprintf(f,
                 "    {\"selectivity\": %.2f, \"measured\": %.4f, "
                 "\"constrained_ms\": %.3f, \"fullfilter_ms\": %.3f, "
                 "\"rerun_ms\": %.3f, "
                 "\"regions_pruned\": %zu, \"dropped_by_box\": %zu, "
                 "\"skyline\": %zu, \"identical\": %s}%s\n",
                 sp.selectivity, sp.measured_selectivity, sp.constrained_ms,
                 sp.fullfilter_ms, sp.rerun_ms, sp.regions_pruned,
                 sp.dropped_by_box, sp.skyline,
                 sp.identical ? "true" : "false",
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Headline for the regression gate: the 10%-selectivity constrained
  // latency (the sweep point the acceptance criteria single out).
  for (const SweepPoint& sp : sweep) {
    if (sp.selectivity == 0.10) {
      std::fprintf(f, "  \"constrained_ms_sel10\": %.3f,\n",
                   sp.constrained_ms);
      std::fprintf(f, "  \"fullfilter_ms_sel10\": %.3f,\n", sp.fullfilter_ms);
      std::fprintf(f, "  \"speedup_sel10\": %.3f,\n",
                   sp.constrained_ms > 0.0
                       ? sp.fullfilter_ms / sp.constrained_ms
                       : 0.0);
    }
  }
  std::fprintf(f, "  \"acceptance\": %s\n", pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  PrintBanner("queries",
              "constrained queries: RZ-region pruning vs post-filtering",
              "200k x 6d, box selectivity sweep 1% / 10% / 50% / 100%");

  const PointSet points = MakeData(Distribution::kIndependent, kN, kDim, 42);
  const ExecutorOptions options = QueryOptions();
  const ParallelSkylineExecutor executor(options);
  const PreparedPlan plan = PreparePlan(points, options);
  executor.ExecuteWithPlan(plan, points);  // Warm-up (pool, page cache).

  std::vector<SweepPoint> sweep;
  for (double selectivity : kSelectivities) {
    sweep.push_back(RunSweepPoint(points, plan, executor, selectivity));
  }

  std::printf("%-12s %14s %14s %10s %10s %10s %9s\n", "selectivity",
              "constrained_ms", "fullfilter_ms", "rerun_ms", "regions",
              "boxdrop", "skyline");
  bool pass = true;
  for (const SweepPoint& sp : sweep) {
    std::printf("%-12.2f %14.1f %14.1f %10.1f %10zu %10zu %9zu%s\n",
                sp.selectivity, sp.constrained_ms, sp.fullfilter_ms,
                sp.rerun_ms, sp.regions_pruned, sp.dropped_by_box, sp.skyline,
                sp.identical ? "" : "  MISMATCH");
    pass = pass && sp.identical;
    if (sp.selectivity <= 0.10) {
      // The structural claims: whole regions die before any point is
      // touched, and the desc-aware path beats running the full skyline
      // and filtering its rows.
      pass = pass && sp.regions_pruned > 0;
      pass = pass && sp.constrained_ms < sp.fullfilter_ms;
    }
  }

  std::printf("# CSV,selectivity,constrained_ms,fullfilter_ms,rerun_ms,"
              "regions_pruned,dropped_by_box\n");
  for (const SweepPoint& sp : sweep) {
    std::printf("# CSV,%.2f,%.3f,%.3f,%.3f,%zu,%zu\n", sp.selectivity,
                sp.constrained_ms, sp.fullfilter_ms, sp.rerun_ms,
                sp.regions_pruned, sp.dropped_by_box);
  }

  WriteJson("BENCH_queries.json", sweep, pass);
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main() { return zsky::bench::Main(); }
