// Serving bench: cold-vs-warm query latency and sustained QPS through the
// QueryService on 500k x 8d. The acceptance gate of the plan/pipeline/
// service split: a warm query must exclude >= 90% of the cold query's
// preprocessing time, with skylines bit-identical cold vs warm, vs the
// one-shot executor, and serial vs concurrent. Emits BENCH_service.json.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/query_service.h"

namespace zsky::bench {
namespace {

constexpr size_t kN = 500000;
constexpr uint32_t kDim = 8;
constexpr size_t kWarmQueries = 5;
constexpr size_t kConcurrentClients = 4;
constexpr size_t kQueriesPerClient = 2;

ExecutorOptions ServeOptions() {
  ExecutorOptions options;
  options.bits = kBits;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.num_map_tasks = 16;
  options.num_threads = 4;
  return options;
}

struct ServiceRun {
  double cold_ms = 0.0;
  double cold_preprocess_ms = 0.0;
  double warm_avg_ms = 0.0;
  // Best-of-kWarmQueries total: the headline warm latency. The average is
  // kept for QPS, but on a time-sliced host a single outlier can drag the
  // mean of 5 warm samples above the one cold sample — the minimum is the
  // robust "what a warm query costs" figure (cf. BestMs in bench_hotpath).
  double warm_best_ms = 0.0;
  double warm_preprocess_avg_ms = 0.0;
  double serial_qps = 0.0;
  double concurrent_qps = 0.0;
  // 1 - warm_pre/cold_pre: fraction of cold preprocessing a warm query
  // skips. The acceptance gate requires >= 0.9.
  double preprocess_excluded_fraction = 0.0;
  bool identical = false;
  size_t skyline = 0;
};

ServiceRun RunService(const PointSet& points) {
  ServiceRun run;
  QueryServiceOptions service_options;
  service_options.executor = ServeOptions();
  service_options.max_in_flight = kConcurrentClients;
  QueryService service(service_options, points);

  // Cold: first query pays the plan build.
  const SkylineQueryResult cold = service.Query();
  run.cold_ms = cold.metrics.total_ms;
  run.cold_preprocess_ms = cold.metrics.preprocess_ms;
  run.skyline = cold.skyline.size();

  // Warm, serial: the plan is amortized away.
  bool identical = true;
  Stopwatch warm_watch;
  for (size_t q = 0; q < kWarmQueries; ++q) {
    const SkylineQueryResult warm = service.Query();
    run.warm_avg_ms += warm.metrics.total_ms;
    if (q == 0 || warm.metrics.total_ms < run.warm_best_ms) {
      run.warm_best_ms = warm.metrics.total_ms;
    }
    run.warm_preprocess_avg_ms += warm.metrics.preprocess_ms;
    identical = identical && warm.skyline == cold.skyline &&
                warm.metrics.plan_reused;
  }
  const double warm_wall_ms = warm_watch.ElapsedMs();
  run.warm_avg_ms /= static_cast<double>(kWarmQueries);
  run.warm_preprocess_avg_ms /= static_cast<double>(kWarmQueries);
  run.serial_qps =
      static_cast<double>(kWarmQueries) / (warm_wall_ms / 1000.0);
  run.preprocess_excluded_fraction =
      run.cold_preprocess_ms > 0.0
          ? 1.0 - run.warm_preprocess_avg_ms / run.cold_preprocess_ms
          : 0.0;

  // Warm, concurrent: admission + pool ticket under client parallelism.
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kConcurrentClients);
  Stopwatch concurrent_watch;
  for (size_t c = 0; c < kConcurrentClients; ++c) {
    clients.emplace_back([&] {
      for (size_t q = 0; q < kQueriesPerClient; ++q) {
        if (service.Query().skyline != cold.skyline) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double concurrent_wall_ms = concurrent_watch.ElapsedMs();
  run.concurrent_qps =
      static_cast<double>(kConcurrentClients * kQueriesPerClient) /
      (concurrent_wall_ms / 1000.0);
  identical = identical && mismatches.load() == 0;

  // One-shot executor cross-check: the service must serve exactly what a
  // fresh Execute() computes.
  const SkylineQueryResult one_shot =
      ParallelSkylineExecutor(ServeOptions()).Execute(points);
  run.identical = identical && one_shot.skyline == cold.skyline;
  return run;
}

void WriteJson(const char* path, const ServiceRun& run) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("!! cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": {\"n\": %zu, \"dim\": %u, "
               "\"distribution\": \"independent\"},\n",
               kN, kDim);
  std::fprintf(f,
               "  \"cold\": {\"total_ms\": %.3f, \"preprocess_ms\": %.3f},\n",
               run.cold_ms, run.cold_preprocess_ms);
  std::fprintf(f,
               "  \"warm\": {\"avg_total_ms\": %.3f, "
               "\"best_total_ms\": %.3f, "
               "\"avg_preprocess_ms\": %.3f, \"queries\": %zu},\n",
               run.warm_avg_ms, run.warm_best_ms, run.warm_preprocess_avg_ms,
               kWarmQueries);
  std::fprintf(f,
               "  \"qps\": {\"serial\": %.2f, \"concurrent\": %.2f, "
               "\"clients\": %zu},\n",
               run.serial_qps, run.concurrent_qps, kConcurrentClients);
  std::fprintf(f,
               "  \"preprocess_excluded_fraction\": %.4f,\n"
               "  \"identical\": %s,\n"
               "  \"skyline_size\": %zu\n",
               run.preprocess_excluded_fraction,
               run.identical ? "true" : "false", run.skyline);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  PrintBanner("service", "prepared plans + concurrent query service",
              "500k x 8d: cold vs warm latency, serial and concurrent QPS");

  const PointSet points = MakeData(Distribution::kIndependent, kN, kDim, 42);
  const ServiceRun run = RunService(points);

  std::printf("%-32s %10.1fms (preprocess %.1fms)\n", "cold query",
              run.cold_ms, run.cold_preprocess_ms);
  std::printf("%-32s %10.1fms (preprocess %.1fms)\n", "warm query avg",
              run.warm_avg_ms, run.warm_preprocess_avg_ms);
  std::printf("%-32s %10.1fms\n", "warm query best", run.warm_best_ms);
  std::printf("%-32s %10.2f\n", "serial QPS", run.serial_qps);
  std::printf("%-32s %10.2f (%zu clients)\n", "concurrent QPS",
              run.concurrent_qps, kConcurrentClients);
  std::printf("%-32s %10.1f%%  identical=%s\n", "preprocess excluded",
              100.0 * run.preprocess_excluded_fraction,
              run.identical ? "yes" : "NO");

  std::printf("# CSV,metric,value\n");
  std::printf("# CSV,cold_ms,%.3f\n", run.cold_ms);
  std::printf("# CSV,cold_preprocess_ms,%.3f\n", run.cold_preprocess_ms);
  std::printf("# CSV,warm_avg_ms,%.3f\n", run.warm_avg_ms);
  std::printf("# CSV,warm_best_ms,%.3f\n", run.warm_best_ms);
  std::printf("# CSV,serial_qps,%.2f\n", run.serial_qps);
  std::printf("# CSV,concurrent_qps,%.2f\n", run.concurrent_qps);
  std::printf("# CSV,preprocess_excluded_fraction,%.4f\n",
              run.preprocess_excluded_fraction);

  WriteJson("BENCH_service.json", run);
  const bool pass =
      run.identical && run.preprocess_excluded_fraction >= 0.9;
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main() { return zsky::bench::Main(); }
