// Figure 7 (load balancing): end-to-end query time for
// {Grid, Angle, ZDG} x {SB, ZS} while varying (a, b) the data size and
// (c, d) the dimensionality, on independent and anti-correlated data.
//
// Paper behaviour to reproduce:
//  - ZDG+ZS is fastest, by ~5x over Grid/Angle at scale;
//  - with SB locals the gap between partitioners narrows (SB dominates
//    the cost);
//  - Grid/Angle blow up as dimensionality grows; ZDG grows smoothly.

#include <string>
#include <vector>

#include "bench_util.h"

namespace zsky::bench {
namespace {

const std::vector<Strategy>& Strategies() {
  static const std::vector<Strategy> strategies{
      {"grid+sb", PartitioningScheme::kGrid, LocalAlgorithm::kSortBased,
       MergeAlgorithm::kSortBased},
      {"grid+zs", PartitioningScheme::kGrid, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZSearch},
      {"angle+sb", PartitioningScheme::kAngle, LocalAlgorithm::kSortBased,
       MergeAlgorithm::kSortBased},
      {"angle+zs", PartitioningScheme::kAngle, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZSearch},
      {"zdg+sb", PartitioningScheme::kZdg, LocalAlgorithm::kSortBased,
       MergeAlgorithm::kSortBased},
      {"zdg+zs", PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZSearch},
  };
  return strategies;
}

constexpr uint32_t kGroups = 32;  // The paper fixes 32 partitions.

void RunSweep(const char* figure, const char* axis_name,
              Distribution distribution,
              const std::vector<std::pair<size_t, uint32_t>>& points_axis) {
  std::printf("\n--- %s: time (ms), %s sweep, %s ---\n", figure, axis_name,
              std::string(DistributionName(distribution)).c_str());
  std::printf("%10s", axis_name);
  for (const auto& s : Strategies()) std::printf(" %10s", s.label.c_str());
  std::printf("\n");
  std::string csv;
  for (const auto& [n, dim] : points_axis) {
    const PointSet points = MakeData(distribution, n, dim, 7 * n + dim);
    const size_t axis_value =
        std::string_view(axis_name) == "n" ? n : static_cast<size_t>(dim);
    std::printf("%10zu", axis_value);
    for (const auto& s : Strategies()) {
      const auto result =
          ParallelSkylineExecutor(MakeOptions(s, kGroups)).Execute(points);
      std::printf(" %10.1f", result.metrics.sim_total_ms);
      std::fflush(stdout);
      csv += "# CSV," + std::string(figure) + "," +
             std::string(DistributionName(distribution)) + "," + s.label +
             "," + std::to_string(axis_value) + "," +
             std::to_string(result.metrics.sim_total_ms) + "\n";
    }
    std::printf("\n");
  }
  std::printf("%s", csv.c_str());
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Figure 7", "load balancing: query time vs size and dim",
              "paper: 10M-110M points on a 6-node cluster; here: 40k-200k "
              "points, in-process MapReduce (shapes comparable, absolutes "
              "not)");
  const std::vector<std::pair<size_t, uint32_t>> sizes{
      {40'000, 5}, {80'000, 5}, {120'000, 5}, {160'000, 5}, {200'000, 5}};
  RunSweep("fig7a", "n", Distribution::kIndependent, sizes);
  RunSweep("fig7b", "n", Distribution::kAnticorrelated, sizes);
  const std::vector<std::pair<size_t, uint32_t>> dims{
      {60'000, 2}, {60'000, 3}, {60'000, 4}, {60'000, 5},
      {60'000, 6}, {60'000, 8}, {60'000, 10}};
  RunSweep("fig7c", "dim", Distribution::kIndependent, dims);
  RunSweep("fig7d", "dim", Distribution::kAnticorrelated, dims);
  return 0;
}
