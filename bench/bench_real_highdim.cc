// Section 6.1/6.5 real-world high-dimensional datasets: NUS-WIDE-like
// (225-d color moments), Flickr-like (512-d GIST), DBpedia-like (250-d LDA
// topics), with the paper's scale-factor expansion.
//
// Paper behaviour to reproduce: the Z-order pipeline handles hundreds of
// dimensions gracefully (Z-addresses collapse dimensionality into one
// ordering), while grid partitioning can only cut a handful of dimensions
// and angle partitioning pays a full hyperspherical transform per point.

#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"

namespace zsky::bench {
namespace {

constexpr uint32_t kGroups = 16;

struct DatasetSpec {
  const char* name;
  uint32_t dim;
  std::function<std::vector<double>(size_t, uint64_t)> generate;
};

void RunDataset(const DatasetSpec& spec, std::string& csv) {
  const size_t base_n = 4'000;
  const std::vector<double> base = spec.generate(base_n, 5);
  for (double scale : {1.0, 2.0, 4.0}) {
    const std::vector<double> values = ScaleExpand(base, spec.dim, scale, 9);
    const Quantizer quantizer(kBits);
    const PointSet points = quantizer.QuantizeAll(values, spec.dim);

    const Strategy zdg{"zdg+zm", PartitioningScheme::kZdg,
                       LocalAlgorithm::kZSearch, MergeAlgorithm::kZMerge};
    const Strategy grid{"grid+zs", PartitioningScheme::kGrid,
                        LocalAlgorithm::kZSearch, MergeAlgorithm::kZSearch};
    const auto zdg_result =
        ParallelSkylineExecutor(MakeOptions(zdg, kGroups)).Execute(points);
    const auto grid_result =
        ParallelSkylineExecutor(MakeOptions(grid, kGroups)).Execute(points);

    std::printf("%-9s d=%3u s=%1.0f n=%6zu  zdg+zm %8.1f ms  grid+zs %8.1f "
                "ms  |skyline| %6zu (%.0f%% of n)\n",
                spec.name, spec.dim, scale, points.size(),
                zdg_result.metrics.sim_total_ms,
                grid_result.metrics.sim_total_ms, zdg_result.skyline.size(),
                100.0 * zdg_result.skyline.size() / points.size());
    std::fflush(stdout);
    csv += "# CSV,real," + std::string(spec.name) + "," +
           std::to_string(spec.dim) + "," + std::to_string(scale) + "," +
           std::to_string(zdg_result.metrics.sim_total_ms) + "," +
           std::to_string(grid_result.metrics.sim_total_ms) + "\n";
  }
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  PrintBanner("Real high-dimensional data (Sections 6.1/6.5)",
              "NUS-WIDE / Flickr / DBpedia simulacra with scale factors",
              "paper: 270k-1M items, s in [5,25], 48-node EC2; here: 4k-16k "
              "items, s in [1,4] (high-d skylines are near-total either "
              "way; see DESIGN.md substitutions)");
  std::string csv;
  const std::vector<DatasetSpec> specs{
      {"nusw", 225,
       [](size_t n, uint64_t seed) { return zsky::GenerateNuswLike(n, seed); }},
      {"flickr", 512,
       [](size_t n, uint64_t seed) {
         return zsky::GenerateFlickrLike(n, seed);
       }},
      {"dbpedia", 250,
       [](size_t n, uint64_t seed) {
         return zsky::GenerateDbpediaLike(n, seed);
       }},
  };
  for (const auto& spec : specs) RunDataset(spec, csv);
  std::printf("%s", csv.c_str());
  return 0;
}
