// Figure 9 (data pruning): number of skyline candidates produced by MR
// job 1 under each partitioning approach — the intermediate-data volume
// that the merge phase, network, and disk must absorb.
//
// Paper behaviour to reproduce: the Z-order pipeline (whose mappers filter
// against the sample-skyline ZB-tree, Algorithm 3) emits far fewer
// candidates than the Grid/Angle baselines, and ZDG emits the fewest of
// the Z-order family.

#include <string>
#include <vector>

#include "bench_util.h"

namespace zsky::bench {
namespace {

constexpr uint32_t kGroups = 32;

void RunSweep(const char* figure, Distribution distribution) {
  const std::vector<Strategy> strategies{
      {"random", PartitioningScheme::kRandom, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZSearch},
      {"grid", PartitioningScheme::kGrid, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZSearch},
      {"angle", PartitioningScheme::kAngle, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZSearch},
      {"naive-z", PartitioningScheme::kNaiveZ, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZMerge},
      {"zhg", PartitioningScheme::kZhg, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZMerge},
      {"zdg", PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZMerge},
  };
  std::printf("\n--- %s: skyline candidates after job 1, d=5, %s ---\n",
              figure, std::string(DistributionName(distribution)).c_str());
  std::printf("%10s %10s", "n", "|skyline|");
  for (const auto& s : strategies) std::printf(" %10s", s.label.c_str());
  std::printf("\n");
  std::string csv;
  for (size_t n : {40'000ul, 80'000ul, 120'000ul, 160'000ul, 200'000ul}) {
    const PointSet points = MakeData(distribution, n, 5, 13 * n);
    std::printf("%10zu", n);
    bool first = true;
    std::vector<size_t> counts;
    size_t skyline_size = 0;
    for (const auto& s : strategies) {
      const auto result =
          ParallelSkylineExecutor(MakeOptions(s, kGroups)).Execute(points);
      counts.push_back(result.metrics.candidates);
      skyline_size = result.skyline.size();
      csv += "# CSV," + std::string(figure) + "," +
             std::string(DistributionName(distribution)) + "," + s.label +
             "," + std::to_string(n) + "," +
             std::to_string(result.metrics.candidates) + "\n";
      (void)first;
    }
    std::printf(" %10zu", skyline_size);
    for (size_t c : counts) std::printf(" %10zu", c);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("%s", csv.c_str());
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Figure 9", "intermediate skyline candidates per approach",
              "paper: 20M-110M points; here: 40k-200k points; Grid/Angle "
              "have no SZB prefilter (as published), Z-family does");
  RunSweep("fig9-indep", Distribution::kIndependent);
  RunSweep("fig9-anti", Distribution::kAnticorrelated);
  return 0;
}
