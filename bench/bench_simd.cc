// SIMD dispatch bench: per-ISA dominance-kernel throughput, Z-order codec
// throughput (seed bit-loop vs magic-shuffle scalar vs BMI2 pdep/pext),
// and the end-to-end pipeline pinned to the scalar tier with the PR-1
// per-point SZB walk vs the best tier with the batched block filter —
// verifying the skylines are bit-identical. Emits BENCH_simd.json.
//
// Tiers the host cannot run report as 0 ms / 0x and are omitted from the
// JSON, so the bench is meaningful on non-AVX2 hardware too.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/cpu.h"
#include "common/dominance_kernels.h"
#include "common/stopwatch.h"
#include "zorder/zorder_codec.h"

namespace zsky::bench {
namespace {

constexpr int kReps = 3;

template <typename Fn>
double BestMs(const Fn& fn, int reps = kReps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    const double ms = watch.ElapsedMs();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// --- 1. Kernel throughput: full-block scans per tier. All-zero probes
// make AnyDominates scan every tile (nothing dominates the origin), so
// early exits never mask the kernel's raw rate. ---
struct KernelTimes {
  double ms[3] = {0.0, 0.0, 0.0};  // Indexed by Isa.
  double Speedup(Isa isa) const {
    const double t = ms[static_cast<int>(isa)];
    return t > 0.0 ? ms[0] / t : 0.0;
  }
};

KernelTimes BenchKernels(const PointSet& points) {
  const size_t n = points.size();
  const uint32_t dim = points.dim();
  std::vector<Coord> soa(n * dim);
  for (uint32_t k = 0; k < dim; ++k) {
    const Coord* src = points.raw().data() + k;
    Coord* lane = soa.data() + k * n;
    for (size_t i = 0; i < n; ++i) lane[i] = src[i * dim];
  }
  constexpr size_t kProbes = 24;
  const std::vector<Coord> zero(dim, 0);
  std::vector<uint8_t> flags(n);
  KernelTimes result;
  for (Isa isa : {Isa::kScalar, Isa::kSse42, Isa::kAvx2}) {
    if (!IsaSupported(isa)) continue;
    const simd::KernelTable& table = simd::KernelTableFor(isa);
    volatile size_t sink = 0;
    result.ms[static_cast<int>(isa)] = BestMs([&] {
      size_t acc = 0;
      for (size_t q = 0; q < kProbes; ++q) {
        acc += table.any_dominates(soa.data(), n, dim, 0, n, zero.data());
        acc += table.count_dominators(soa.data(), n, dim, 0, n, zero.data());
        acc += table.mark_dominated_by(soa.data(), n, dim, 0, n, zero.data(),
                                       flags.data());
      }
      sink = acc;
    });
    (void)sink;
  }
  return result;
}

// --- 2. Codec throughput. Baseline is the seed's bit-by-bit interleave
// (one branch per address bit), reproduced here verbatim. ---
void EncodeBitLoop(const ZOrderCodec& codec, std::span<const Coord> point,
                   std::span<uint64_t> words) {
  for (auto& w : words) w = 0;
  size_t t = 0;
  for (uint32_t level = 0; level < codec.bits(); ++level) {
    const uint32_t coord_bit = codec.bits() - 1 - level;
    for (uint32_t k = 0; k < codec.dim(); ++k, ++t) {
      if ((point[k] >> coord_bit) & 1u) {
        words[t / 64] |= uint64_t{1} << (63 - (t % 64));
      }
    }
  }
}

struct CodecTimes {
  double encode_bitloop_ms = 0.0;
  double encode_scalar_ms = 0.0;  // Magic-shuffle scalar path.
  double encode_bmi2_ms = 0.0;    // 0 when the host lacks BMI2.
  double decode_bitloop_ms = 0.0;
  double decode_scalar_ms = 0.0;
  double decode_bmi2_ms = 0.0;
  bool bmi2 = false;
};

// Seed-style bit-by-bit decode, the PR-1 baseline.
void DecodeBitLoop(const ZOrderCodec& codec, const ZAddress& address,
                   std::span<Coord> out) {
  for (uint32_t k = 0; k < codec.dim(); ++k) out[k] = 0;
  size_t t = 0;
  for (uint32_t level = 0; level < codec.bits(); ++level) {
    const uint32_t coord_bit = codec.bits() - 1 - level;
    for (uint32_t k = 0; k < codec.dim(); ++k, ++t) {
      if (address.GetBit(t)) out[k] |= Coord{1} << coord_bit;
    }
  }
}

CodecTimes BenchCodec(const PointSet& points) {
  const ZOrderCodec codec(points.dim(), kBits);
  CodecTimes result;
  result.bmi2 = codec.uses_bmi2();
  const size_t n = points.size();
  std::vector<uint64_t> words(codec.num_words());
  volatile uint64_t sink = 0;

  result.encode_bitloop_ms = BestMs([&] {
    uint64_t acc = 0;
    for (size_t i = 0; i < n; ++i) {
      EncodeBitLoop(codec, points[i], words);
      acc ^= words[0];
    }
    sink = acc;
  });
  result.encode_scalar_ms = BestMs([&] {
    uint64_t acc = 0;
    for (size_t i = 0; i < n; ++i) {
      codec.EncodeToScalar(points[i], words);
      acc ^= words[0];
    }
    sink = acc;
  });
  if (result.bmi2) {
    result.encode_bmi2_ms = BestMs([&] {
      uint64_t acc = 0;
      for (size_t i = 0; i < n; ++i) {
        codec.EncodeTo(points[i], words);
        acc ^= words[0];
      }
      sink = acc;
    });
  }

  const std::vector<ZAddress> addresses = codec.EncodeAll(points);
  std::vector<Coord> out(codec.dim());
  result.decode_bitloop_ms = BestMs([&] {
    uint64_t acc = 0;
    for (const ZAddress& a : addresses) {
      DecodeBitLoop(codec, a, out);
      acc ^= out[0];
    }
    sink = acc;
  });
  result.decode_scalar_ms = BestMs([&] {
    uint64_t acc = 0;
    for (const ZAddress& a : addresses) {
      codec.DecodeScalar(a, out);
      acc ^= out[0];
    }
    sink = acc;
  });
  if (result.bmi2) {
    result.decode_bmi2_ms = BestMs([&] {
      uint64_t acc = 0;
      for (const ZAddress& a : addresses) {
        codec.Decode(a, out);
        acc ^= out[0];
      }
      sink = acc;
    });
  }
  (void)sink;
  return result;
}

// --- 3. End-to-end: scalar tier + per-point SZB tree walk (the PR-1
// configuration) vs the best tier + batched block filter. ---
struct EndToEnd {
  double scalar_ms = 0.0;
  double simd_ms = 0.0;
  bool identical = false;
  size_t skyline = 0;
  double Speedup() const { return simd_ms > 0.0 ? scalar_ms / simd_ms : 0.0; }
};

ExecutorOptions PipelineOptions(bool simd) {
  ExecutorOptions options;
  options.bits = kBits;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.num_map_tasks = 16;
  options.num_threads = 4;
  options.batch_szb_filter = simd;
  return options;
}

EndToEnd BenchEndToEnd(const PointSet& points, Isa best) {
  EndToEnd result;
  SkylineIndices scalar_skyline;
  SkylineIndices simd_skyline;
  {
    SetActiveIsa(Isa::kScalar);
    const ParallelSkylineExecutor executor(PipelineOptions(false));
    result.scalar_ms =
        BestMs([&] { scalar_skyline = executor.Execute(points).skyline; });
  }
  {
    SetActiveIsa(best);
    const ParallelSkylineExecutor executor(PipelineOptions(true));
    result.simd_ms =
        BestMs([&] { simd_skyline = executor.Execute(points).skyline; });
  }
  result.identical = scalar_skyline == simd_skyline;
  result.skyline = simd_skyline.size();
  return result;
}

void WriteJson(const char* path, size_t n, uint32_t dim,
               const KernelTimes& kernel, const CodecTimes& codec,
               const EndToEnd& e2e) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("!! cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": {\"n\": %zu, \"dim\": %u, \"bits\": %u, "
               "\"distribution\": \"independent\"},\n",
               n, dim, kBits);
  std::fprintf(f, "  \"host\": {\"sse42\": %s, \"avx2\": %s, \"bmi2\": %s},\n",
               HostCpuFeatures().sse42 ? "true" : "false",
               HostCpuFeatures().avx2 ? "true" : "false",
               HostCpuFeatures().bmi2 ? "true" : "false");
  std::fprintf(f, "  \"kernel\": {\"scalar_ms\": %.3f", kernel.ms[0]);
  for (Isa isa : {Isa::kSse42, Isa::kAvx2}) {
    if (!IsaSupported(isa)) continue;
    std::fprintf(f, ", \"%s_ms\": %.3f, \"%s_speedup\": %.3f",
                 IsaName(isa).data(), kernel.ms[static_cast<int>(isa)],
                 IsaName(isa).data(), kernel.Speedup(isa));
  }
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "  \"codec_encode\": {\"bitloop_ms\": %.3f, "
               "\"shuffle_ms\": %.3f, \"shuffle_speedup\": %.3f",
               codec.encode_bitloop_ms, codec.encode_scalar_ms,
               codec.encode_scalar_ms > 0.0
                   ? codec.encode_bitloop_ms / codec.encode_scalar_ms
                   : 0.0);
  if (codec.bmi2) {
    std::fprintf(f, ", \"bmi2_ms\": %.3f, \"bmi2_speedup\": %.3f",
                 codec.encode_bmi2_ms,
                 codec.encode_bmi2_ms > 0.0
                     ? codec.encode_bitloop_ms / codec.encode_bmi2_ms
                     : 0.0);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "  \"codec_decode\": {\"bitloop_ms\": %.3f, "
               "\"shuffle_ms\": %.3f, \"shuffle_speedup\": %.3f",
               codec.decode_bitloop_ms, codec.decode_scalar_ms,
               codec.decode_scalar_ms > 0.0
                   ? codec.decode_bitloop_ms / codec.decode_scalar_ms
                   : 0.0);
  if (codec.bmi2) {
    std::fprintf(f, ", \"bmi2_ms\": %.3f, \"bmi2_speedup\": %.3f",
                 codec.decode_bmi2_ms,
                 codec.decode_bmi2_ms > 0.0
                     ? codec.decode_bitloop_ms / codec.decode_bmi2_ms
                     : 0.0);
  }
  std::fprintf(f, "},\n");
  std::fprintf(f,
               "  \"end_to_end\": {\"scalar_ms\": %.3f, \"simd_ms\": %.3f, "
               "\"speedup\": %.3f, \"identical\": %s, "
               "\"skyline_size\": %zu}\n",
               e2e.scalar_ms, e2e.simd_ms, e2e.Speedup(),
               e2e.identical ? "true" : "false", e2e.skyline);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  constexpr size_t kN = 500000;
  constexpr uint32_t kDim = 8;
  PrintBanner("simd", "per-ISA dominance kernels + BMI2 Z-order codec",
              "500k x 8d kernel/codec microbenches plus end-to-end");

  const Isa initial = ActiveIsa();
  const Isa best = IsaSupported(Isa::kAvx2)   ? Isa::kAvx2
                   : IsaSupported(Isa::kSse42) ? Isa::kSse42
                                               : Isa::kScalar;
  std::printf("host: sse42=%d avx2=%d bmi2=%d, best tier: %s\n",
              HostCpuFeatures().sse42, HostCpuFeatures().avx2,
              HostCpuFeatures().bmi2, IsaName(best).data());

  const PointSet points = MakeData(Distribution::kIndependent, kN, kDim, 42);

  const KernelTimes kernel = BenchKernels(points);
  std::printf("%-28s %10s %8s\n", "kernel tier (full scans)", "best-of-3",
              "speedup");
  for (Isa isa : {Isa::kScalar, Isa::kSse42, Isa::kAvx2}) {
    if (!IsaSupported(isa)) continue;
    std::printf("%-28s %9.1fms %7.2fx\n", IsaName(isa).data(),
                kernel.ms[static_cast<int>(isa)], kernel.Speedup(isa));
  }

  SetActiveIsa(best);
  const CodecTimes codec = BenchCodec(points);
  std::printf("%-28s %10s %8s\n", "codec path (500k points)", "best-of-3",
              "speedup");
  std::printf("%-28s %9.1fms %7.2fx\n", "encode bit-loop (seed)",
              codec.encode_bitloop_ms, 1.0);
  std::printf("%-28s %9.1fms %7.2fx\n", "encode magic shuffle",
              codec.encode_scalar_ms,
              codec.encode_bitloop_ms / codec.encode_scalar_ms);
  if (codec.bmi2) {
    std::printf("%-28s %9.1fms %7.2fx\n", "encode pdep",
                codec.encode_bmi2_ms,
                codec.encode_bitloop_ms / codec.encode_bmi2_ms);
  }
  std::printf("%-28s %9.1fms %7.2fx\n", "decode bit-loop (seed)",
              codec.decode_bitloop_ms, 1.0);
  std::printf("%-28s %9.1fms %7.2fx\n", "decode magic shuffle",
              codec.decode_scalar_ms,
              codec.decode_bitloop_ms / codec.decode_scalar_ms);
  if (codec.bmi2) {
    std::printf("%-28s %9.1fms %7.2fx\n", "decode pext",
                codec.decode_bmi2_ms,
                codec.decode_bitloop_ms / codec.decode_bmi2_ms);
  }

  const EndToEnd e2e = BenchEndToEnd(points, best);
  SetActiveIsa(initial);
  std::printf("%-28s %9.1fms -> %9.1fms %7.2fx  identical=%s\n",
              "end-to-end Execute", e2e.scalar_ms, e2e.simd_ms, e2e.Speedup(),
              e2e.identical ? "yes" : "NO");

  std::printf("# CSV,metric,baseline_ms,optimized_ms,speedup\n");
  for (Isa isa : {Isa::kSse42, Isa::kAvx2}) {
    if (!IsaSupported(isa)) continue;
    std::printf("# CSV,kernel_%s,%.3f,%.3f,%.3f\n", IsaName(isa).data(),
                kernel.ms[0], kernel.ms[static_cast<int>(isa)],
                kernel.Speedup(isa));
  }
  std::printf("# CSV,encode_shuffle,%.3f,%.3f,%.3f\n",
              codec.encode_bitloop_ms, codec.encode_scalar_ms,
              codec.encode_bitloop_ms / codec.encode_scalar_ms);
  if (codec.bmi2) {
    std::printf("# CSV,encode_bmi2,%.3f,%.3f,%.3f\n", codec.encode_bitloop_ms,
                codec.encode_bmi2_ms,
                codec.encode_bitloop_ms / codec.encode_bmi2_ms);
  }
  std::printf("# CSV,end_to_end,%.3f,%.3f,%.3f\n", e2e.scalar_ms, e2e.simd_ms,
              e2e.Speedup());

  WriteJson("BENCH_simd.json", kN, kDim, kernel, codec, e2e);
  return e2e.identical ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main() { return zsky::bench::Main(); }
