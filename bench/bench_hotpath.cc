// Hot-path ablation bench: measures each of the three hot-path mechanisms
// in isolation (persistent worker pool vs spawn-per-wave threads, block
// vs scalar dominance kernel, parallel vs serial shuffle) and then the
// end-to-end pipeline with everything on vs the seed configuration,
// verifying the skylines are bit-identical. Emits BENCH_hotpath.json for
// machine consumption next to the usual "# CSV" rows.

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "algo/sort_based.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "mapreduce/job.h"
#include "mapreduce/task_runner.h"
#include "mapreduce/worker_pool.h"

namespace zsky::bench {
namespace {

constexpr int kReps = 3;

// Best-of-k wall time of `fn` in ms.
template <typename Fn>
double BestMs(const Fn& fn, int reps = kReps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    const double ms = watch.ElapsedMs();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

struct Pair {
  double baseline_ms;
  double optimized_ms;
  double Speedup() const {
    return optimized_ms > 0.0 ? baseline_ms / optimized_ms : 0.0;
  }
};

// --- 1. Pool reuse vs spawn-per-wave: many small waves back-to-back,
// the wave pattern a query pipeline produces. ---
Pair BenchPool() {
  constexpr uint32_t kThreads = 4;
  constexpr size_t kWaves = 300;
  constexpr size_t kTasksPerWave = 16;
  auto work = [](size_t) {
    volatile uint64_t x = 0;
    for (int i = 0; i < 2000; ++i) x = x + i;
  };
  Pair result;
  result.baseline_ms = BestMs([&] {
    for (size_t w = 0; w < kWaves; ++w) {
      mr::TaskRunner(kThreads).Run(kTasksPerWave, work);
    }
  });
  result.optimized_ms = BestMs([&] {
    mr::WorkerPool pool(kThreads);
    for (size_t w = 0; w < kWaves; ++w) {
      pool.Run(kTasksPerWave, work);
    }
  });
  return result;
}

// --- 2. Block vs scalar dominance kernel: sort-based skyline window
// scans, the kernel's densest call site. ---
Pair BenchKernel(const PointSet& points) {
  Pair result;
  SkylineIndices scalar;
  SkylineIndices block;
  result.baseline_ms =
      BestMs([&] { scalar = SortBasedSkyline(points, false); });
  result.optimized_ms =
      BestMs([&] { block = SortBasedSkyline(points, true); });
  if (scalar != block) {
    std::printf("!! kernel outputs DIVERGED\n");
    result.optimized_ms = 0.0;
  }
  return result;
}

// --- 3. Shuffle record path: legacy serial vs legacy parallel vs the
// zero-copy columnar path. 4M records (16 tasks x 250k, 8 reducers, no
// combiner): big enough that the shuffle stage runs for hundreds of ms —
// the seed's 960k-record workload finished in ~6 ms, too small to show
// anything but scheduling noise. ---
struct ShuffleBench {
  double legacy_serial_ms = 1e300;
  double legacy_parallel_ms = 1e300;
  double zero_copy_ms = 1e300;
};

ShuffleBench BenchShuffle() {
  constexpr size_t kTasks = 16;
  constexpr uint64_t kPerTask = 250000;
  auto run = [](bool legacy, bool parallel) {
    mr::MapReduceJob<uint64_t>::Options options;
    options.num_reduce_tasks = 8;
    options.num_threads = 4;
    options.legacy_record_path = legacy;
    options.parallel_shuffle = parallel;
    mr::MapReduceJob<uint64_t> job(options);
    const mr::JobMetrics metrics = job.Run(
        kTasks,
        [](size_t task, auto& emit) {
          for (uint64_t v = 0; v < kPerTask; ++v) {
            emit(static_cast<int32_t>((task + v) % 64), v);
          }
        },
        nullptr,
        [](int32_t, std::span<const uint64_t> values) {
          volatile uint64_t sink = 0;
          for (uint64_t v : values) sink = sink + v;
        });
    // The measured shuffle stage itself, not whole-job time.
    return metrics.shuffle_wall_ms;
  };
  ShuffleBench result;
  for (int r = 0; r < kReps; ++r) {
    result.legacy_serial_ms =
        std::min(result.legacy_serial_ms, run(true, false));
    result.legacy_parallel_ms =
        std::min(result.legacy_parallel_ms, run(true, true));
    result.zero_copy_ms = std::min(result.zero_copy_ms, run(false, true));
  }
  return result;
}

// --- 4. End-to-end Execute: everything on vs the seed configuration. ---
ExecutorOptions PipelineOptions(bool hot) {
  ExecutorOptions options;
  options.bits = kBits;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.num_map_tasks = 16;
  options.num_threads = 4;
  options.reuse_worker_pool = hot;
  options.parallel_shuffle = hot;
  options.use_block_kernel = hot;
  options.zero_copy_shuffle = hot;
  options.job2_map_tasks = hot ? 0 : 1;  // Seed ran job 2's map as 1 task.
  return options;
}

struct EndToEnd {
  Pair time;
  bool identical = false;
  size_t skyline = 0;
};

EndToEnd BenchEndToEnd(const PointSet& points) {
  EndToEnd result;
  SkylineIndices seed_skyline;
  SkylineIndices hot_skyline;
  {
    const ParallelSkylineExecutor executor(PipelineOptions(false));
    result.time.baseline_ms = BestMs([&] {
      seed_skyline = executor.Execute(points).skyline;
    });
  }
  {
    const ParallelSkylineExecutor executor(PipelineOptions(true));
    result.time.optimized_ms = BestMs([&] {
      hot_skyline = executor.Execute(points).skyline;
    });
  }
  result.identical = seed_skyline == hot_skyline;
  result.skyline = hot_skyline.size();
  return result;
}

void WriteJson(const char* path, size_t n, uint32_t dim, const Pair& pool,
               const Pair& kernel, const ShuffleBench& shuffle,
               const EndToEnd& e2e) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("!! cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": {\"n\": %zu, \"dim\": %u, "
               "\"distribution\": \"independent\"},\n",
               n, dim);
  auto section = [&](const char* name, const char* base_key,
                     const char* opt_key, const Pair& p, bool last) {
    std::fprintf(f,
                 "  \"%s\": {\"%s\": %.3f, \"%s\": %.3f, "
                 "\"speedup\": %.3f}%s\n",
                 name, base_key, p.baseline_ms, opt_key, p.optimized_ms,
                 p.Speedup(), last ? "" : ",");
  };
  section("pool", "spawn_per_wave_ms", "worker_pool_ms", pool, false);
  section("kernel", "scalar_ms", "block_ms", kernel, false);
  std::fprintf(f,
               "  \"shuffle\": {\"legacy_serial_ms\": %.3f, "
               "\"legacy_parallel_ms\": %.3f, \"zero_copy_ms\": %.3f, "
               "\"parallel_speedup\": %.3f, \"zero_copy_speedup\": %.3f},\n",
               shuffle.legacy_serial_ms, shuffle.legacy_parallel_ms,
               shuffle.zero_copy_ms,
               shuffle.legacy_parallel_ms > 0.0
                   ? shuffle.legacy_serial_ms / shuffle.legacy_parallel_ms
                   : 0.0,
               shuffle.zero_copy_ms > 0.0
                   ? shuffle.legacy_serial_ms / shuffle.zero_copy_ms
                   : 0.0);
  std::fprintf(f,
               "  \"end_to_end\": {\"seed_ms\": %.3f, \"hotpath_ms\": %.3f, "
               "\"speedup\": %.3f, \"identical\": %s, "
               "\"skyline_size\": %zu}\n",
               e2e.time.baseline_ms, e2e.time.optimized_ms,
               e2e.time.Speedup(), e2e.identical ? "true" : "false",
               e2e.skyline);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  constexpr size_t kN = 500000;
  constexpr uint32_t kDim = 8;
  PrintBanner("hotpath", "persistent pool / block kernel / parallel shuffle",
              "500k x 8d end-to-end plus per-mechanism ablations");

  const PointSet points = MakeData(Distribution::kIndependent, kN, kDim, 42);

  const Pair pool = BenchPool();
  std::printf("%-28s %10s %10s %8s\n", "mechanism", "baseline", "optimized",
              "speedup");
  std::printf("%-28s %9.1fms %9.1fms %7.2fx\n", "pool (300 waves x 16 tasks)",
              pool.baseline_ms, pool.optimized_ms, pool.Speedup());

  const Pair kernel = BenchKernel(points);
  std::printf("%-28s %9.1fms %9.1fms %7.2fx\n", "kernel (sort-based 500kx8d)",
              kernel.baseline_ms, kernel.optimized_ms, kernel.Speedup());

  const ShuffleBench shuffle = BenchShuffle();
  std::printf("%-28s %9.1fms %9.1fms %7.2fx\n", "shuffle par (4M recs, 8 red)",
              shuffle.legacy_serial_ms, shuffle.legacy_parallel_ms,
              shuffle.legacy_parallel_ms > 0.0
                  ? shuffle.legacy_serial_ms / shuffle.legacy_parallel_ms
                  : 0.0);
  std::printf("%-28s %9.1fms %9.1fms %7.2fx\n", "shuffle zero-copy",
              shuffle.legacy_serial_ms, shuffle.zero_copy_ms,
              shuffle.zero_copy_ms > 0.0
                  ? shuffle.legacy_serial_ms / shuffle.zero_copy_ms
                  : 0.0);

  const EndToEnd e2e = BenchEndToEnd(points);
  std::printf("%-28s %9.1fms %9.1fms %7.2fx  identical=%s\n",
              "end-to-end Execute", e2e.time.baseline_ms,
              e2e.time.optimized_ms, e2e.time.Speedup(),
              e2e.identical ? "yes" : "NO");

  std::printf("# CSV,mechanism,baseline_ms,optimized_ms,speedup\n");
  std::printf("# CSV,pool,%.3f,%.3f,%.3f\n", pool.baseline_ms,
              pool.optimized_ms, pool.Speedup());
  std::printf("# CSV,kernel,%.3f,%.3f,%.3f\n", kernel.baseline_ms,
              kernel.optimized_ms, kernel.Speedup());
  std::printf("# CSV,shuffle_parallel,%.3f,%.3f,%.3f\n",
              shuffle.legacy_serial_ms, shuffle.legacy_parallel_ms,
              shuffle.legacy_parallel_ms > 0.0
                  ? shuffle.legacy_serial_ms / shuffle.legacy_parallel_ms
                  : 0.0);
  std::printf("# CSV,shuffle_zero_copy,%.3f,%.3f,%.3f\n",
              shuffle.legacy_serial_ms, shuffle.zero_copy_ms,
              shuffle.zero_copy_ms > 0.0
                  ? shuffle.legacy_serial_ms / shuffle.zero_copy_ms
                  : 0.0);
  std::printf("# CSV,end_to_end,%.3f,%.3f,%.3f\n", e2e.time.baseline_ms,
              e2e.time.optimized_ms, e2e.time.Speedup());

  WriteJson("BENCH_hotpath.json", kN, kDim, pool, kernel, shuffle, e2e);
  return e2e.identical ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main() { return zsky::bench::Main(); }
