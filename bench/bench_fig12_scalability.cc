// Figure 12 (scalability): end-to-end time of ZDG+ZM against the three
// published competitors — Grid+ZS, Angle+ZS, and MR-GPMRS — as data size
// grows.
//
// Paper behaviour to reproduce: existing approaches grow quadratically
// with data size (incomparable pairs grow quadratically and they cannot
// prune candidates effectively); ZDG+ZM grows smoothly, reaching ~5x, 8x,
// 10x speedups over MR-GPMRS, Angle+ZS and Grid+ZS respectively at scale.

#include <string>
#include <vector>

#include "bench_util.h"
#include "core/mr_gpmrs.h"

namespace zsky::bench {
namespace {

constexpr uint32_t kGroups = 32;

void RunSweep(const char* figure, Distribution distribution) {
  std::printf("\n--- %s: total time (ms) vs data size, d=5, %s ---\n", figure,
              std::string(DistributionName(distribution)).c_str());
  std::printf("%10s %10s %10s %10s %10s %12s\n", "n", "grid+zs", "angle+zs",
              "mr-gpmrs", "zdg+zm", "speedup-max");
  std::string csv;
  for (size_t n : {20'000ul, 40'000ul, 80'000ul, 120'000ul, 160'000ul}) {
    const PointSet points = MakeData(distribution, n, 5, 17 * n);

    const Strategy grid{"grid+zs", PartitioningScheme::kGrid,
                        LocalAlgorithm::kZSearch, MergeAlgorithm::kZSearch};
    const Strategy angle{"angle+zs", PartitioningScheme::kAngle,
                         LocalAlgorithm::kZSearch, MergeAlgorithm::kZSearch};
    const Strategy zdg{"zdg+zm", PartitioningScheme::kZdg,
                       LocalAlgorithm::kZSearch, MergeAlgorithm::kZMerge};

    const double grid_ms = ParallelSkylineExecutor(MakeOptions(grid, kGroups))
                               .Execute(points)
                               .metrics.sim_total_ms;
    const double angle_ms =
        ParallelSkylineExecutor(MakeOptions(angle, kGroups))
            .Execute(points)
            .metrics.sim_total_ms;
    MrGpmrsOptions gpmrs;
    gpmrs.num_cells = kGroups;
    gpmrs.num_merge_reducers = 8;
    gpmrs.bits = kBits;
    const double gpmrs_ms =
        MrGpmrsSkyline(points, gpmrs).metrics.sim_total_ms;
    const double zdg_ms = ParallelSkylineExecutor(MakeOptions(zdg, kGroups))
                              .Execute(points)
                              .metrics.sim_total_ms;

    const double best_other = std::max({grid_ms, angle_ms, gpmrs_ms});
    std::printf("%10zu %10.1f %10.1f %10.1f %10.1f %11.1fx\n", n, grid_ms,
                angle_ms, gpmrs_ms, zdg_ms, best_other / zdg_ms);
    std::fflush(stdout);
    for (const auto& [label, ms] :
         std::vector<std::pair<const char*, double>>{{"grid+zs", grid_ms},
                                                     {"angle+zs", angle_ms},
                                                     {"mr-gpmrs", gpmrs_ms},
                                                     {"zdg+zm", zdg_ms}}) {
      csv += "# CSV," + std::string(figure) + "," +
             std::string(DistributionName(distribution)) + "," + label + "," +
             std::to_string(n) + "," + std::to_string(ms) + "\n";
    }
  }
  std::printf("%s", csv.c_str());
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Figure 12", "scalability vs Grid+ZS / Angle+ZS / MR-GPMRS",
              "paper: 2M-30M points on EC2; here: 20k-160k points, "
              "simulated-cluster milliseconds");
  RunSweep("fig12", Distribution::kIndependent);
  return 0;
}
