// Ablations of the design choices DESIGN.md calls out:
//   A. SZB-tree mapper filter on/off (Algorithm 3 lines 2-3).
//   B. Map-side combiner on/off (shuffle-volume reduction).
//   C. ZB-tree geometry: leaf capacity x fanout for Z-search.
//   D. Partition expansion factor delta for ZDG.
//   E. Pairwise Z-merge (Algorithm 4) vs the k-way ZMergeAll used in
//      production.

#include <memory>
#include <string>
#include <vector>

#include "algo/sort_based.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "index/zmerge.h"
#include "index/zsearch.h"

namespace zsky::bench {
namespace {

constexpr uint32_t kGroups = 32;

void AblateSzbFilter(const PointSet& points) {
  std::printf("\n--- A. SZB-tree mapper filter (zdg+zs+zm, n=%zu, d=%u) "
              "---\n",
              points.size(), points.dim());
  std::printf("%-6s %12s %12s %12s %12s\n", "szb", "filtered", "candidates",
              "shuffle-rec", "sim-total");
  for (bool on : {true, false}) {
    Strategy s{"zdg", PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
               MergeAlgorithm::kZMerge};
    ExecutorOptions options = MakeOptions(s, kGroups);
    options.enable_szb_filter = on;
    const auto result = ParallelSkylineExecutor(options).Execute(points);
    std::printf("%-6s %12zu %12zu %12zu %12.1f\n", on ? "on" : "off",
                result.metrics.filtered_by_szb, result.metrics.candidates,
                result.metrics.job1.shuffle_records,
                result.metrics.sim_total_ms);
  }
}

void AblateCombiner(const PointSet& points) {
  std::printf("\n--- B. map-side combiner (zdg+zs+zm) ---\n");
  std::printf("%-8s %12s %12s %12s\n", "combiner", "shuffle-rec",
              "shuffle-MiB", "sim-total");
  for (bool on : {true, false}) {
    Strategy s{"zdg", PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
               MergeAlgorithm::kZMerge};
    ExecutorOptions options = MakeOptions(s, kGroups);
    options.enable_combiner = on;
    const auto result = ParallelSkylineExecutor(options).Execute(points);
    std::printf("%-8s %12zu %12.2f %12.1f\n", on ? "on" : "off",
                result.metrics.job1.shuffle_records,
                result.metrics.job1.shuffle_bytes / (1024.0 * 1024.0),
                result.metrics.sim_total_ms);
  }
}

void AblateTreeGeometry(const PointSet& points) {
  std::printf("\n--- C. ZB-tree geometry for centralized Z-search ---\n");
  std::printf("%6s %6s %12s %12s %12s\n", "leaf", "fanout", "ms",
              "nodes-visit", "pts-tested");
  const ZOrderCodec codec(points.dim(), kBits);
  for (uint32_t leaf : {4u, 8u, 16u, 32u, 64u}) {
    for (uint32_t fanout : {4u, 8u, 16u}) {
      ZBTree::Options tree;
      tree.leaf_capacity = leaf;
      tree.fanout = fanout;
      Stopwatch watch;
      ZSearchStats stats;
      ZSearchSkyline(codec, points, tree, &stats);
      std::printf("%6u %6u %12.1f %12zu %12zu\n", leaf, fanout,
                  watch.ElapsedMs(), stats.nodes_visited,
                  stats.points_tested);
    }
  }
}

void AblateExpansion(const PointSet& points) {
  std::printf("\n--- D. partition expansion factor delta (zdg) ---\n");
  std::printf("%6s %12s %12s %12s %12s\n", "delta", "partitions",
              "candidates", "pre-ms", "sim-total");
  for (uint32_t delta : {1u, 2u, 4u, 8u, 16u}) {
    Strategy s{"zdg", PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
               MergeAlgorithm::kZMerge};
    ExecutorOptions options = MakeOptions(s, kGroups);
    options.expansion = delta;
    const auto result = ParallelSkylineExecutor(options).Execute(points);
    std::printf("%6u %12zu %12zu %12.1f %12.1f\n", delta,
                result.metrics.num_partitions, result.metrics.candidates,
                result.metrics.preprocess_ms, result.metrics.sim_total_ms);
  }
}

void AblateMergeVariant(const PointSet& points) {
  std::printf("\n--- E. pairwise Z-merge vs k-way ZMergeAll ---\n");
  const uint32_t dim = points.dim();
  const ZOrderCodec codec(dim, kBits);
  // Build per-chunk local skylines as the candidate trees.
  const size_t chunks = kGroups;
  std::vector<std::unique_ptr<ZBTree>> trees;
  std::vector<const ZBTree*> ptrs;
  size_t candidates = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t begin = c * points.size() / chunks;
    const size_t end = (c + 1) * points.size() / chunks;
    PointSet chunk(dim);
    std::vector<uint32_t> rows;
    for (size_t i = begin; i < end; ++i) {
      chunk.AppendFrom(points, i);
      rows.push_back(static_cast<uint32_t>(i));
    }
    PointSet local(dim);
    std::vector<uint32_t> ids;
    for (uint32_t i : ZSearchSkyline(codec, chunk)) {
      local.AppendFrom(chunk, i);
      ids.push_back(rows[i]);
    }
    candidates += ids.size();
    trees.push_back(std::make_unique<ZBTree>(&codec, local, std::move(ids),
                                             ZBTree::Options()));
    ptrs.push_back(trees.back().get());
  }
  std::printf("candidates: %zu\n", candidates);

  Stopwatch kway_watch;
  ZMergeStats kway_stats;
  const auto kway = ZMergeAll(codec, ptrs, ZBTree::Options(), &kway_stats);
  std::printf("%-18s %10.1f ms  (subtree discards %zu, point tests %zu)\n",
              "k-way ZMergeAll", kway_watch.ElapsedMs(),
              kway_stats.subtrees_discarded, kway_stats.points_tested);

  Stopwatch pair_watch;
  DynamicSkyline sky(&codec);
  ZMergeStats pair_stats;
  for (const ZBTree* tree : ptrs) {
    ZMergeStats stats;
    ZMerge(*tree, sky, &stats);
    pair_stats.subtrees_discarded += stats.subtrees_discarded;
    pair_stats.points_tested += stats.points_tested;
    pair_stats.skyline_removed += stats.skyline_removed;
  }
  std::printf("%-18s %10.1f ms  (subtree discards %zu, point tests %zu, "
              "removals %zu)\n",
              "pairwise Z-merge", pair_watch.ElapsedMs(),
              pair_stats.subtrees_discarded, pair_stats.points_tested,
              pair_stats.skyline_removed);
  std::printf("results agree: %s\n",
              sky.size() == kway.size() ? "yes" : "NO (bug!)");
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Ablations", "design-choice sensitivity",
              "100k independent 5-d points unless stated");
  const zsky::PointSet points =
      MakeData(Distribution::kIndependent, 100'000, 5, 21);
  AblateSzbFilter(points);
  AblateCombiner(points);
  AblateTreeGeometry(points);
  AblateExpansion(points);
  AblateMergeVariant(MakeData(Distribution::kAnticorrelated, 60'000, 5, 22));
  return 0;
}
