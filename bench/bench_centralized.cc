// Centralized skyline algorithms head-to-head: BNL, sort-based (SB),
// divide & conquer (D&C), BBS (R-tree) and Z-search (ZS).
//
// Supports the paper's Section 2 claim that Z-search is the
// state-of-the-art centralized algorithm (it is the local algorithm and
// merge building block of the distributed pipeline), and shows where each
// classic algorithm's regime ends as size/dimensionality grow.

#include <functional>
#include <string>
#include <vector>

#include "algo/bnl.h"
#include "algo/dnc.h"
#include "algo/sort_based.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "index/bbs.h"
#include "index/zsearch.h"

namespace zsky::bench {
namespace {

struct Algorithm {
  const char* label;
  std::function<SkylineIndices(const ZOrderCodec&, const PointSet&)> run;
};

const std::vector<Algorithm>& Algorithms() {
  static const std::vector<Algorithm> algorithms{
      {"bnl",
       [](const ZOrderCodec&, const PointSet& ps) { return BnlSkyline(ps); }},
      {"sb",
       [](const ZOrderCodec&, const PointSet& ps) {
         return SortBasedSkyline(ps);
       }},
      {"dnc",
       [](const ZOrderCodec&, const PointSet& ps) { return DncSkyline(ps); }},
      {"bbs",
       [](const ZOrderCodec& codec, const PointSet& ps) {
         return BbsSkyline(codec, ps);
       }},
      {"zs",
       [](const ZOrderCodec& codec, const PointSet& ps) {
         return ZSearchSkyline(codec, ps);
       }},
  };
  return algorithms;
}

void RunSweep(const char* table, const char* axis_name,
              Distribution distribution,
              const std::vector<std::pair<size_t, uint32_t>>& axis) {
  std::printf("\n--- %s: centralized skyline time (ms), %s sweep, %s ---\n",
              table, axis_name,
              std::string(DistributionName(distribution)).c_str());
  std::printf("%10s %10s", axis_name, "|skyline|");
  for (const auto& a : Algorithms()) std::printf(" %10s", a.label);
  std::printf("\n");
  std::string csv;
  for (const auto& [n, dim] : axis) {
    const PointSet points = MakeData(distribution, n, dim, 3 * n + dim);
    const ZOrderCodec codec(dim, kBits);
    const size_t axis_value =
        std::string_view(axis_name) == "n" ? n : static_cast<size_t>(dim);
    std::vector<double> times;
    size_t skyline_size = 0;
    for (const auto& a : Algorithms()) {
      Stopwatch watch;
      const SkylineIndices sky = a.run(codec, points);
      times.push_back(watch.ElapsedMs());
      skyline_size = sky.size();
      csv += "# CSV," + std::string(table) + "," +
             std::string(DistributionName(distribution)) + "," + a.label +
             "," + std::to_string(axis_value) + "," +
             std::to_string(times.back()) + "\n";
    }
    std::printf("%10zu %10zu", axis_value, skyline_size);
    for (double t : times) std::printf(" %10.1f", t);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("%s", csv.c_str());
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Centralized algorithms (Section 2 context)",
              "BNL vs SB vs D&C vs BBS vs Z-search",
              "single-threaded wall time; sizes bounded so BNL stays "
              "runnable");
  const std::vector<std::pair<size_t, uint32_t>> sizes{
      {20'000, 5}, {50'000, 5}, {100'000, 5}, {200'000, 5}};
  RunSweep("central-n-indep", "n", Distribution::kIndependent, sizes);
  RunSweep("central-n-anti", "n", Distribution::kAnticorrelated, sizes);
  const std::vector<std::pair<size_t, uint32_t>> dims{
      {30'000, 2}, {30'000, 4}, {30'000, 6}, {30'000, 8}, {30'000, 10}};
  RunSweep("central-d-indep", "dim", Distribution::kIndependent, dims);
  return 0;
}
