// Out-of-core columnar bench (PR 7): runs the skyline pipeline over an
// mmap'd `.zsc` dataset far larger than the working set it is allowed to
// keep resident, and proves two things with hard assertions (not just
// numbers): (1) the mmap path is bit-identical to the heap path on a
// 500k x 8d control, and (2) peak RSS of the budget-bounded cold run is
// capped by the budget knob + a fixed pipeline allowance + 1KB per
// candidate (query output) — NOT by the dataset size. Emits
// BENCH_outofcore.json; `scripts/check.sh outofcore` gates
// outofcore_points_per_sec against the committed copy.
//
// Flags: --n <rows> --dim <d> --budget-mb <mb> --file <path> --full --keep
// Default scale is 8M x 8d (sized for CI); --full runs the paper-regime
// 50M x 8d headline (1.6 GB file).

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <malloc.h>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/executor.h"
#include "io/columnar.h"

namespace zsky::bench {
namespace {

// Current resident set from /proc/self/status, in MiB. Unlike
// ru_maxrss this is instantaneous, so a sampler thread can watch the
// peak of one phase instead of the high-water mark of the whole process.
double CurrentRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

// Polls VmRSS on a background thread; Reset()/PeakMb() bracket a phase.
class RssSampler {
 public:
  RssSampler() : worker_([this] { Loop(); }) {}
  ~RssSampler() {
    stop_.store(true);
    worker_.join();
  }

  void Reset() { peak_centi_mb_.store(static_cast<int64_t>(CurrentRssMb() * 100.0)); }
  double PeakMb() {
    Observe();
    return static_cast<double>(peak_centi_mb_.load()) / 100.0;
  }

 private:
  void Observe() {
    const auto centi = static_cast<int64_t>(CurrentRssMb() * 100.0);
    int64_t prev = peak_centi_mb_.load();
    while (centi > prev && !peak_centi_mb_.compare_exchange_weak(prev, centi)) {
    }
  }
  void Loop() {
    while (!stop_.load()) {
      Observe();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  std::atomic<int64_t> peak_centi_mb_{0};
  std::atomic<bool> stop_{false};
  std::thread worker_;
};

ExecutorOptions PipelineOptions(size_t budget_mb, size_t n) {
  ExecutorOptions options;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.bits = kBits;
  options.num_map_tasks = 32;
  options.num_threads = 4;
  // Sampling quality is itself a memory knob: a starved sample weakens
  // the SZB prefilter and floods the shuffle, the local-skyline gathers
  // and the merge trees with non-skyline candidates — at 50M, capping
  // the sample at 100k rows doubled the candidate count and cost ~250 MB
  // of candidate-side heap, far more than the 400k skipped sample rows
  // cost. 1% keeps the candidate set near the true skyline at every
  // measured n.
  (void)n;
  options.sample_ratio = 0.01;
  options.shuffle_memory_budget_bytes = budget_mb * 1024 * 1024;
  return options;
}

// Streams `n` generated rows into a `.zsc` file in O(chunk) memory —
// the dataset under test never exists on the heap.
bool GenerateColumnar(const std::string& path, size_t n, uint32_t dim,
                      double* seconds) {
  constexpr size_t kChunkRows = 1 << 20;
  Stopwatch watch;
  ColumnarWriter writer(path, dim, n, kBits);
  if (!writer.ok()) {
    std::printf("!! %s\n", writer.error().c_str());
    return false;
  }
  const Quantizer quantizer(kBits);
  for (size_t begin = 0; begin < n; begin += kChunkRows) {
    const size_t rows = std::min(kChunkRows, n - begin);
    const PointSet chunk = GenerateQuantized(
        Distribution::kIndependent, rows, dim, 42 + begin / kChunkRows,
        quantizer);
    if (!writer.AppendRows(chunk.raw().data(), rows)) {
      std::printf("!! %s\n", writer.error().c_str());
      return false;
    }
  }
  if (!writer.Finish()) {
    std::printf("!! %s\n", writer.error().c_str());
    return false;
  }
  *seconds = watch.ElapsedMs() / 1000.0;
  return true;
}

// 500k x 8d control: heap pipeline vs budget-bounded mmap pipeline must
// agree bit for bit (and check.sh re-runs the full scheme x local parity
// matrix under ASan).
constexpr size_t kParityN = 500000;

bool ParityControl(const std::string& dir, size_t* skyline) {
  const PointSet points = MakeData(Distribution::kIndependent, kParityN, 8, 7);
  const std::string path = dir + "/zsky_outofcore_parity.zsc";
  std::string error;
  if (!WriteColumnarFile(path, points, kBits, &error)) {
    std::printf("!! %s\n", error.c_str());
    return false;
  }
  ColumnarDataset::Options map_options;
  map_options.bounded_residency = true;
  const auto mapped = ColumnarDataset::Open(path, &error, map_options);
  if (mapped == nullptr) {
    std::printf("!! %s\n", error.c_str());
    return false;
  }
  const ExecutorOptions options = PipelineOptions(64, kParityN);
  const SkylineIndices heap =
      ParallelSkylineExecutor(options).Execute(points).skyline;
  const SkylineIndices mmapped =
      ParallelSkylineExecutor(options).Execute(mapped->view()).skyline;
  std::remove(path.c_str());
  *skyline = heap.size();
  return heap == mmapped;
}

struct RunResult {
  double wall_ms = 0.0;
  double peak_rss_mb = 0.0;
  size_t skyline = 0;
  size_t candidates = 0;
};

RunResult RunOnce(const ColumnarDataset& dataset, size_t budget_mb,
                  RssSampler& sampler) {
  const ExecutorOptions options = PipelineOptions(budget_mb, dataset.size());
  // Cold start: evict this mapping's residency and the file's clean
  // page-cache pages, so the run pays its own faults.
  dataset.DropPageCache();
  sampler.Reset();
  Stopwatch watch;
  const ParallelSkylineExecutor executor(options);
  const SkylineQueryResult result = executor.Execute(dataset.view());
  RunResult run;
  run.wall_ms = watch.ElapsedMs();
  run.peak_rss_mb = sampler.PeakMb();
  run.skyline = result.skyline.size();
  run.candidates = result.metrics.candidates;
  return run;
}

int Main(int argc, char** argv) {
  size_t n = 8'000'000;
  uint32_t dim = 8;
  size_t budget_mb = 64;
  bool keep = false;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--n") {
      n = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dim") {
      dim = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--budget-mb") {
      budget_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--file") {
      file = next();
    } else if (arg == "--full") {
      n = 50'000'000;  // The paper's mid-regime headline: 50M x 8d.
    } else if (arg == "--keep") {
      keep = true;
    } else {
      std::printf("unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = tmp != nullptr ? tmp : "/tmp";
  if (file.empty()) file = dir + "/zsky_outofcore.zsc";
  const double dataset_mb =
      static_cast<double>(n) * dim * sizeof(Coord) / 1048576.0;

  PrintBanner("outofcore", "mmap-backed .zsc pipeline vs heap, RSS-bounded",
              "default 8M x 8d; --full runs 50M x 8d (paper regime)");
  std::printf("dataset: %zu x %u = %.0f MB, budget %zu MB, file %s\n", n, dim,
              dataset_mb, budget_mb, file.c_str());

  size_t parity_skyline = 0;
  const bool parity_ok = ParityControl(dir, &parity_skyline);
  std::printf("parity 500k x 8d: %s (skyline %zu)\n",
              parity_ok ? "identical" : "DIVERGED", parity_skyline);
  if (!parity_ok) return 1;

  double convert_s = 0.0;
  if (!GenerateColumnar(file, n, dim, &convert_s)) return 1;
  std::printf("convert: %.1fs (%.1f Mpoints/s)\n", convert_s,
              static_cast<double>(n) / 1e6 / convert_s);

  RssSampler sampler;
  std::string error;

  // Bounded mapping FIRST, while the process heap is pristine: release
  // hook armed; map scan, sample gather and shuffle all stay within
  // budget + a fixed pipeline allowance. The allocator is trimmed of the
  // parity control's scratch so the measured baseline is this process's
  // true floor — running the unbounded contrast before this point would
  // leave O(dataset) glibc-retained arenas under the measurement.
  ::malloc_trim(0);
  const double bounded_base_rss_mb = CurrentRssMb();
  RunResult bounded;
  {
    ColumnarDataset::Options bounded_opts;
    bounded_opts.bounded_residency = true;
    const auto bounded_ds = ColumnarDataset::Open(file, &error, bounded_opts);
    if (bounded_ds == nullptr) {
      std::printf("!! %s\n", error.c_str());
      return 1;
    }
    bounded = RunOnce(*bounded_ds, budget_mb, sampler);
  }

  // Unbounded mapping: the contrast run. The scan faults the whole file
  // in and nothing releases it — RSS grows with the dataset.
  RunResult unbounded;
  {
    ColumnarDataset::Options plain;
    const auto unbounded_ds = ColumnarDataset::Open(file, &error, plain);
    if (unbounded_ds == nullptr) {
      std::printf("!! %s\n", error.c_str());
      return 1;
    }
    unbounded = RunOnce(*unbounded_ds, budget_mb, sampler);
  }

  if (!keep) std::remove(file.c_str());

  if (bounded.skyline != unbounded.skyline) {
    std::printf("!! bounded/unbounded skyline sizes diverged: %zu vs %zu\n",
                bounded.skyline, unbounded.skyline);
    return 1;
  }

  const double mpts = static_cast<double>(n) / 1e6;
  std::printf("%-22s %10s %14s %12s %10s\n", "run", "wall", "points/sec",
              "peak RSS", "skyline");
  auto row = [&](const char* name, const RunResult& r) {
    std::printf("%-22s %8.1fs %10.2fM/s %10.1fMB %10zu\n", name,
                r.wall_ms / 1000.0, mpts / (r.wall_ms / 1000.0),
                r.peak_rss_mb, r.skyline);
  };
  row("mmap unbounded", unbounded);
  row("mmap bounded", bounded);

  // The hard ceiling: the budget knob, a fixed allowance for the
  // pipeline's own heap (plan sample + partitioner, transpose blocks,
  // spill buffers, allocator slack), and a term proportional to the
  // CANDIDATE count — candidates are query output, and their gathers +
  // local-skyline/merge trees are heap working set no storage layer can
  // shrink (folding them under the budget knob is a ROADMAP follow-on).
  // Crucially there is NO O(dataset) term — that is the claim; a plan
  // regression that inflated candidates would widen this ceiling but get
  // caught by check.sh's throughput gate instead.
  const double allowance_mb = 160.0;
  const double candidate_mb =
      static_cast<double>(bounded.candidates) * 1024.0 / 1048576.0;
  const double ceiling_mb = bounded_base_rss_mb +
                            static_cast<double>(budget_mb) + allowance_mb +
                            candidate_mb;
  const bool rss_ok = bounded.peak_rss_mb <= ceiling_mb;
  std::printf("RSS ceiling: peak %.1f MB vs ceiling %.1f MB (base %.1f + "
              "budget %zu + allowance %.0f + %zu candidates x 1KB = %.0f) "
              "-> %s\n",
              bounded.peak_rss_mb, ceiling_mb, bounded_base_rss_mb, budget_mb,
              allowance_mb, bounded.candidates, candidate_mb,
              rss_ok ? "ok" : "EXCEEDED");

  std::printf("# CSV,run,wall_ms,points_per_sec,peak_rss_mb\n");
  std::printf("# CSV,unbounded,%.1f,%.0f,%.1f\n", unbounded.wall_ms,
              static_cast<double>(n) / (unbounded.wall_ms / 1000.0),
              unbounded.peak_rss_mb);
  std::printf("# CSV,bounded,%.1f,%.0f,%.1f\n", bounded.wall_ms,
              static_cast<double>(n) / (bounded.wall_ms / 1000.0),
              bounded.peak_rss_mb);

  std::FILE* f = std::fopen("BENCH_outofcore.json", "w");
  if (f == nullptr) {
    std::printf("!! cannot write BENCH_outofcore.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": {\"n\": %zu, \"dim\": %u, \"bits\": %u, "
               "\"distribution\": \"independent\", \"dataset_mb\": %.0f, "
               "\"budget_mb\": %zu},\n",
               n, dim, kBits, dataset_mb, budget_mb);
  // One key per line: scripts/check.sh greps these with awk.
  std::fprintf(f, "  \"convert_mpoints_per_sec\": %.2f,\n",
               mpts / convert_s);
  std::fprintf(f, "  \"outofcore_points_per_sec\": %.0f,\n",
               static_cast<double>(n) / (bounded.wall_ms / 1000.0));
  std::fprintf(f, "  \"bounded_wall_ms\": %.1f,\n", bounded.wall_ms);
  std::fprintf(f, "  \"bounded_peak_rss_mb\": %.1f,\n", bounded.peak_rss_mb);
  std::fprintf(f, "  \"unbounded_wall_ms\": %.1f,\n", unbounded.wall_ms);
  std::fprintf(f, "  \"unbounded_peak_rss_mb\": %.1f,\n",
               unbounded.peak_rss_mb);
  std::fprintf(f, "  \"rss_ceiling_mb\": %.1f,\n", ceiling_mb);
  std::fprintf(f, "  \"rss_bounded\": %s,\n", rss_ok ? "true" : "false");
  std::fprintf(f, "  \"skyline_size\": %zu,\n", bounded.skyline);
  std::fprintf(f, "  \"candidates\": %zu,\n", bounded.candidates);
  std::fprintf(f, "  \"parity_identical\": %s\n",
               parity_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_outofcore.json\n");
  return rss_ok ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main(int argc, char** argv) { return zsky::bench::Main(argc, argv); }
