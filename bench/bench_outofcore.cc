// Out-of-core columnar bench (PR 7, extended by the columnar-direct PR):
// runs the skyline pipeline over an mmap'd `.zsc` dataset far larger than
// the working set it is allowed to keep resident, and proves with hard
// assertions (not just numbers): (1) the mmap path is bit-identical to
// the heap path on a 500k x 8d control, (2) peak RSS of the budget-
// bounded warm run is capped by the budget knob + a small fixed allowance
// + the MEASURED candidate-side peak (common/scan_counters.h) — NOT by
// the dataset size, and (3) the columnar-direct map wave (SoA mask
// kernel, zero transpose) beats the RowBlockCursor ablation on the same
// warm bounded workload. A cold lane (--cold runs only it) evicts the
// page cache (posix_fadvise(DONTNEED) via DropPageCache) and contrasts
// async readahead on vs off. Emits BENCH_outofcore.json;
// `scripts/check.sh outofcore` gates outofcore_points_per_sec and
// cold_points_per_sec against the committed copy.
//
// Flags: --n <rows> --dim <d> --budget-mb <mb> --file <path> --full
//        --keep --cold
// Default scale is 8M x 8d (sized for CI); --full runs the paper-regime
// 50M x 8d headline (1.6 GB file); --cold runs only the cold lanes.

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <malloc.h>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/scan_counters.h"
#include "common/stopwatch.h"
#include "core/executor.h"
#include "io/columnar.h"

namespace zsky::bench {
namespace {

// Current resident set from /proc/self/status, in MiB. Unlike
// ru_maxrss this is instantaneous, so a sampler thread can watch the
// peak of one phase instead of the high-water mark of the whole process.
double CurrentRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

// Polls VmRSS on a background thread; Reset()/PeakMb() bracket a phase.
class RssSampler {
 public:
  RssSampler() : worker_([this] { Loop(); }) {}
  ~RssSampler() {
    stop_.store(true);
    worker_.join();
  }

  void Reset() { peak_centi_mb_.store(static_cast<int64_t>(CurrentRssMb() * 100.0)); }
  double PeakMb() {
    Observe();
    return static_cast<double>(peak_centi_mb_.load()) / 100.0;
  }

 private:
  void Observe() {
    const auto centi = static_cast<int64_t>(CurrentRssMb() * 100.0);
    int64_t prev = peak_centi_mb_.load();
    while (centi > prev && !peak_centi_mb_.compare_exchange_weak(prev, centi)) {
    }
  }
  void Loop() {
    while (!stop_.load()) {
      Observe();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  std::atomic<int64_t> peak_centi_mb_{0};
  std::atomic<bool> stop_{false};
  std::thread worker_;
};

ExecutorOptions PipelineOptions(size_t budget_mb, size_t n) {
  ExecutorOptions options;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.bits = kBits;
  options.num_map_tasks = 32;
  options.num_threads = 4;
  // Sampling quality is itself a memory knob: a starved sample weakens
  // the SZB prefilter and floods the shuffle, the local-skyline gathers
  // and the merge trees with non-skyline candidates — at 50M, capping
  // the sample at 100k rows doubled the candidate count and cost ~250 MB
  // of candidate-side heap, far more than the 400k skipped sample rows
  // cost. 1% keeps the candidate set near the true skyline at every
  // measured n.
  (void)n;
  options.sample_ratio = 0.01;
  options.shuffle_memory_budget_bytes = budget_mb * 1024 * 1024;
  return options;
}

// Streams `n` generated rows into a `.zsc` file in O(chunk) memory —
// the dataset under test never exists on the heap.
bool GenerateColumnar(const std::string& path, size_t n, uint32_t dim,
                      double* seconds) {
  constexpr size_t kChunkRows = 1 << 20;
  Stopwatch watch;
  ColumnarWriter writer(path, dim, n, kBits);
  if (!writer.ok()) {
    std::printf("!! %s\n", writer.error().c_str());
    return false;
  }
  const Quantizer quantizer(kBits);
  for (size_t begin = 0; begin < n; begin += kChunkRows) {
    const size_t rows = std::min(kChunkRows, n - begin);
    const PointSet chunk = GenerateQuantized(
        Distribution::kIndependent, rows, dim, 42 + begin / kChunkRows,
        quantizer);
    if (!writer.AppendRows(chunk.raw().data(), rows)) {
      std::printf("!! %s\n", writer.error().c_str());
      return false;
    }
  }
  if (!writer.Finish()) {
    std::printf("!! %s\n", writer.error().c_str());
    return false;
  }
  *seconds = watch.ElapsedMs() / 1000.0;
  return true;
}

// 500k x 8d control: heap pipeline vs budget-bounded mmap pipeline must
// agree bit for bit (and check.sh re-runs the full scheme x local parity
// matrix under ASan).
constexpr size_t kParityN = 500000;

bool ParityControl(const std::string& dir, size_t* skyline) {
  const PointSet points = MakeData(Distribution::kIndependent, kParityN, 8, 7);
  const std::string path = dir + "/zsky_outofcore_parity.zsc";
  std::string error;
  if (!WriteColumnarFile(path, points, kBits, &error)) {
    std::printf("!! %s\n", error.c_str());
    return false;
  }
  ColumnarDataset::Options map_options;
  map_options.bounded_residency = true;
  map_options.readahead = true;
  const auto mapped = ColumnarDataset::Open(path, &error, map_options);
  if (mapped == nullptr) {
    std::printf("!! %s\n", error.c_str());
    return false;
  }
  const ExecutorOptions options = PipelineOptions(64, kParityN);
  const SkylineIndices heap =
      ParallelSkylineExecutor(options).Execute(points).skyline;
  const SkylineIndices direct =
      ParallelSkylineExecutor(options).Execute(mapped->view()).skyline;
  ExecutorOptions cursor = options;
  cursor.columnar_direct = false;
  const SkylineIndices transposed =
      ParallelSkylineExecutor(cursor).Execute(mapped->view()).skyline;
  std::remove(path.c_str());
  *skyline = heap.size();
  return heap == direct && direct == transposed;
}

struct Lane {
  size_t budget_mb = 0;
  bool columnar_direct = true;
  bool readahead = true;
  bool cold = false;  // Evict the page cache before the run.
};

struct RunResult {
  double wall_ms = 0.0;
  double peak_rss_mb = 0.0;
  size_t skyline = 0;
  size_t candidates = 0;
  size_t transpose_bytes = 0;
  size_t readahead_bytes = 0;
  size_t readahead_hits = 0;
  size_t candidate_peak_bytes = 0;
};

RunResult RunOnce(const ColumnarDataset& dataset, const Lane& lane,
                  RssSampler& sampler) {
  ExecutorOptions options = PipelineOptions(lane.budget_mb, dataset.size());
  options.columnar_direct = lane.columnar_direct;
  options.readahead = lane.readahead;
  if (lane.cold) dataset.DropPageCache();
  sampler.Reset();
  Stopwatch watch;
  const ParallelSkylineExecutor executor(options);
  const SkylineQueryResult result = executor.Execute(dataset.view());
  RunResult run;
  run.wall_ms = watch.ElapsedMs();
  run.peak_rss_mb = sampler.PeakMb();
  run.skyline = result.skyline.size();
  run.candidates = result.metrics.candidates;
  run.transpose_bytes = result.metrics.job1.transpose_bytes;
  run.readahead_bytes = result.metrics.job1.readahead_bytes;
  run.readahead_hits = result.metrics.job1.readahead_hits;
  run.candidate_peak_bytes = result.metrics.candidate_peak_bytes;
  return run;
}

int Main(int argc, char** argv) {
  size_t n = 8'000'000;
  uint32_t dim = 8;
  size_t budget_mb = 64;
  bool keep = false;
  bool cold_only = false;
  std::string file;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "--n") {
      n = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--dim") {
      dim = static_cast<uint32_t>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--budget-mb") {
      budget_mb = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--file") {
      file = next();
    } else if (arg == "--full") {
      n = 50'000'000;  // The paper's mid-regime headline: 50M x 8d.
    } else if (arg == "--keep") {
      keep = true;
    } else if (arg == "--cold") {
      cold_only = true;
    } else {
      std::printf("unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  const char* tmp = std::getenv("TMPDIR");
  const std::string dir = tmp != nullptr ? tmp : "/tmp";
  if (file.empty()) file = dir + "/zsky_outofcore.zsc";
  const double dataset_mb =
      static_cast<double>(n) * dim * sizeof(Coord) / 1048576.0;

  PrintBanner("outofcore", "mmap-backed .zsc pipeline vs heap, RSS-bounded",
              "default 8M x 8d; --full runs 50M x 8d; --cold: cold lanes only");
  std::printf("dataset: %zu x %u = %.0f MB, budget %zu MB, file %s\n", n, dim,
              dataset_mb, budget_mb, file.c_str());

  size_t parity_skyline = 0;
  const bool parity_ok = ParityControl(dir, &parity_skyline);
  std::printf("parity 500k x 8d (heap = direct = cursor): %s (skyline %zu)\n",
              parity_ok ? "identical" : "DIVERGED", parity_skyline);
  if (!parity_ok) return 1;

  double convert_s = 0.0;
  if (!GenerateColumnar(file, n, dim, &convert_s)) return 1;
  std::printf("convert: %.1fs (%.1f Mpoints/s)\n", convert_s,
              static_cast<double>(n) / 1e6 / convert_s);

  RssSampler sampler;
  std::string error;
  const double mpts = static_cast<double>(n) / 1e6;
  auto pps = [n](const RunResult& r) {
    return static_cast<double>(n) / (r.wall_ms / 1000.0);
  };

  std::printf("%-24s %10s %14s %12s %10s\n", "run", "wall", "points/sec",
              "peak RSS", "skyline");
  auto row = [&](const char* name, const RunResult& r) {
    std::printf("%-24s %8.1fs %10.2fM/s %10.1fMB %10zu\n", name,
                r.wall_ms / 1000.0, mpts / (r.wall_ms / 1000.0),
                r.peak_rss_mb, r.skyline);
  };

  // --- Cold lanes: page cache evicted before each run; readahead on vs
  // off shows what the async prefetch worker buys when every touched
  // page must be faulted back in. Best of two trials per lane: cold wall
  // time rides on fault scheduling (and on few-core hosts the prefetch
  // worker contends with the scan thread), so a single trial swings by
  // >10% — more than the regression gate in check.sh.
  RunResult cold_ra, cold_nora;
  {
    ColumnarDataset::Options cold_opts;
    cold_opts.bounded_residency = true;
    cold_opts.readahead = true;
    const auto cold_ds = ColumnarDataset::Open(file, &error, cold_opts);
    if (cold_ds == nullptr) {
      std::printf("!! %s\n", error.c_str());
      return 1;
    }
    Lane lane;
    lane.budget_mb = budget_mb;
    lane.cold = true;
    for (int trial = 0; trial < 2; ++trial) {
      lane.readahead = false;  // Ablation first so the worker can't warm it.
      const RunResult nora = RunOnce(*cold_ds, lane, sampler);
      lane.readahead = true;
      const RunResult ra = RunOnce(*cold_ds, lane, sampler);
      if (trial == 0 || nora.wall_ms < cold_nora.wall_ms) cold_nora = nora;
      if (trial == 0 || ra.wall_ms < cold_ra.wall_ms) cold_ra = ra;
    }
  }
  row("cold, readahead off", cold_nora);
  row("cold, readahead on", cold_ra);
  const double cold_speedup = cold_nora.wall_ms / cold_ra.wall_ms;
  std::printf("cold readahead speedup: %.2fx (%zu prefetch hits, %.0f MB "
              "prefetched)\n",
              cold_speedup, cold_ra.readahead_hits,
              static_cast<double>(cold_ra.readahead_bytes) / 1048576.0);
  if (cold_ra.skyline != cold_nora.skyline) {
    std::printf("!! cold readahead on/off skyline sizes diverged: %zu vs %zu\n",
                cold_ra.skyline, cold_nora.skyline);
    return 1;
  }

  if (cold_only) {
    if (!keep) std::remove(file.c_str());
    std::FILE* f = std::fopen("BENCH_outofcore.json", "w");
    if (f == nullptr) {
      std::printf("!! cannot write BENCH_outofcore.json\n");
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"workload\": {\"n\": %zu, \"dim\": %u, \"bits\": %u, "
                 "\"distribution\": \"independent\", \"dataset_mb\": %.0f, "
                 "\"budget_mb\": %zu},\n",
                 n, dim, kBits, dataset_mb, budget_mb);
    std::fprintf(f, "  \"cold_points_per_sec\": %.0f,\n", pps(cold_ra));
    std::fprintf(f, "  \"cold_noreadahead_points_per_sec\": %.0f,\n",
                 pps(cold_nora));
    std::fprintf(f, "  \"readahead_cold_speedup\": %.2f,\n", cold_speedup);
    std::fprintf(f, "  \"readahead_hits\": %zu,\n", cold_ra.readahead_hits);
    std::fprintf(f, "  \"parity_identical\": %s\n",
                 parity_ok ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_outofcore.json (cold lanes)\n");
    return 0;
  }

  // --- Warm bounded lanes, while the page cache still holds the file
  // the convert just wrote. Direct (SoA mask wave, zero transpose) vs
  // cursor (RowBlockCursor transpose) is the tentpole's headline. The
  // allocator is trimmed of the cold lanes' scratch so the measured
  // baseline is this process's true floor.
  ::malloc_trim(0);
  const double bounded_base_rss_mb = CurrentRssMb();
  RunResult bounded, cursor_run;
  {
    ColumnarDataset::Options bounded_opts;
    bounded_opts.bounded_residency = true;
    bounded_opts.readahead = true;
    const auto bounded_ds = ColumnarDataset::Open(file, &error, bounded_opts);
    if (bounded_ds == nullptr) {
      std::printf("!! %s\n", error.c_str());
      return 1;
    }
    Lane lane;
    lane.budget_mb = budget_mb;
    bounded = RunOnce(*bounded_ds, lane, sampler);
    lane.columnar_direct = false;
    cursor_run = RunOnce(*bounded_ds, lane, sampler);
  }

  // Unbounded mapping: the contrast run. The scan faults the whole file
  // in and nothing releases it — RSS grows with the dataset.
  RunResult unbounded;
  {
    ColumnarDataset::Options plain;
    const auto unbounded_ds = ColumnarDataset::Open(file, &error, plain);
    if (unbounded_ds == nullptr) {
      std::printf("!! %s\n", error.c_str());
      return 1;
    }
    Lane lane;
    lane.budget_mb = budget_mb;
    unbounded = RunOnce(*unbounded_ds, lane, sampler);
  }

  if (!keep) std::remove(file.c_str());

  if (bounded.skyline != unbounded.skyline ||
      bounded.skyline != cursor_run.skyline) {
    std::printf("!! warm lane skyline sizes diverged: direct %zu, cursor "
                "%zu, unbounded %zu\n",
                bounded.skyline, cursor_run.skyline, unbounded.skyline);
    return 1;
  }
  if (bounded.transpose_bytes != 0) {
    std::printf("!! columnar-direct run transposed %zu bytes (want 0)\n",
                bounded.transpose_bytes);
    return 1;
  }

  row("mmap unbounded", unbounded);
  row("mmap bounded cursor", cursor_run);
  row("mmap bounded direct", bounded);
  const double direct_speedup = cursor_run.wall_ms / bounded.wall_ms;
  std::printf("columnar-direct speedup: %.2fx (cursor transposed %.0f MB, "
              "direct 0 MB)\n",
              direct_speedup,
              static_cast<double>(cursor_run.transpose_bytes) / 1048576.0);

  // The hard ceiling: the budget knob, a small fixed allowance for the
  // pipeline's own heap (plan sample + partitioner, scan blocks, spill
  // buffers, allocator slack), and the MEASURED candidate-side peak
  // (ScopedCandidateBytes around the local-skyline gathers and merge
  // trees) with 2x headroom for allocator fragmentation and the row-id
  // metadata riding alongside — candidates are query output, so this
  // term scales with the answer, never the dataset. Crucially there is
  // NO O(dataset) term — that is the claim; a plan regression that
  // inflated candidates would widen this ceiling but get caught by
  // check.sh's throughput gate instead. (The fixed 160 MB allowance of
  // the pre-measurement era is retired: candidate memory is now metered,
  // and job 2's shuffle slice shrinks by the same estimate under the
  // budget knob.)
  const double allowance_mb = 48.0;
  const double candidate_mb =
      2.0 * static_cast<double>(bounded.candidate_peak_bytes) / 1048576.0;
  const double ceiling_mb = bounded_base_rss_mb +
                            static_cast<double>(budget_mb) + allowance_mb +
                            candidate_mb;
  const bool rss_ok = bounded.peak_rss_mb <= ceiling_mb;
  std::printf("RSS ceiling: peak %.1f MB vs ceiling %.1f MB (base %.1f + "
              "budget %zu + allowance %.0f + 2 x %.1f MB measured candidate "
              "peak) -> %s\n",
              bounded.peak_rss_mb, ceiling_mb, bounded_base_rss_mb, budget_mb,
              allowance_mb,
              static_cast<double>(bounded.candidate_peak_bytes) / 1048576.0,
              rss_ok ? "ok" : "EXCEEDED");

  std::printf("# CSV,run,wall_ms,points_per_sec,peak_rss_mb\n");
  std::printf("# CSV,unbounded,%.1f,%.0f,%.1f\n", unbounded.wall_ms,
              pps(unbounded), unbounded.peak_rss_mb);
  std::printf("# CSV,bounded_cursor,%.1f,%.0f,%.1f\n", cursor_run.wall_ms,
              pps(cursor_run), cursor_run.peak_rss_mb);
  std::printf("# CSV,bounded_direct,%.1f,%.0f,%.1f\n", bounded.wall_ms,
              pps(bounded), bounded.peak_rss_mb);
  std::printf("# CSV,cold_readahead,%.1f,%.0f,%.1f\n", cold_ra.wall_ms,
              pps(cold_ra), cold_ra.peak_rss_mb);
  std::printf("# CSV,cold_noreadahead,%.1f,%.0f,%.1f\n", cold_nora.wall_ms,
              pps(cold_nora), cold_nora.peak_rss_mb);

  std::FILE* f = std::fopen("BENCH_outofcore.json", "w");
  if (f == nullptr) {
    std::printf("!! cannot write BENCH_outofcore.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": {\"n\": %zu, \"dim\": %u, \"bits\": %u, "
               "\"distribution\": \"independent\", \"dataset_mb\": %.0f, "
               "\"budget_mb\": %zu},\n",
               n, dim, kBits, dataset_mb, budget_mb);
  // One key per line: scripts/check.sh greps these with awk.
  std::fprintf(f, "  \"convert_mpoints_per_sec\": %.2f,\n",
               mpts / convert_s);
  std::fprintf(f, "  \"outofcore_points_per_sec\": %.0f,\n", pps(bounded));
  std::fprintf(f, "  \"cursor_points_per_sec\": %.0f,\n", pps(cursor_run));
  std::fprintf(f, "  \"direct_speedup\": %.2f,\n", direct_speedup);
  std::fprintf(f, "  \"transpose_bytes_direct\": %zu,\n",
               bounded.transpose_bytes);
  std::fprintf(f, "  \"cold_points_per_sec\": %.0f,\n", pps(cold_ra));
  std::fprintf(f, "  \"cold_noreadahead_points_per_sec\": %.0f,\n",
               pps(cold_nora));
  std::fprintf(f, "  \"readahead_cold_speedup\": %.2f,\n", cold_speedup);
  std::fprintf(f, "  \"readahead_hits\": %zu,\n", cold_ra.readahead_hits);
  std::fprintf(f, "  \"bounded_wall_ms\": %.1f,\n", bounded.wall_ms);
  std::fprintf(f, "  \"bounded_peak_rss_mb\": %.1f,\n", bounded.peak_rss_mb);
  std::fprintf(f, "  \"unbounded_wall_ms\": %.1f,\n", unbounded.wall_ms);
  std::fprintf(f, "  \"unbounded_peak_rss_mb\": %.1f,\n",
               unbounded.peak_rss_mb);
  std::fprintf(f, "  \"candidate_peak_mb\": %.1f,\n",
               static_cast<double>(bounded.candidate_peak_bytes) / 1048576.0);
  std::fprintf(f, "  \"rss_ceiling_mb\": %.1f,\n", ceiling_mb);
  std::fprintf(f, "  \"rss_bounded\": %s,\n", rss_ok ? "true" : "false");
  std::fprintf(f, "  \"skyline_size\": %zu,\n", bounded.skyline);
  std::fprintf(f, "  \"candidates\": %zu,\n", bounded.candidates);
  std::fprintf(f, "  \"parity_identical\": %s\n",
               parity_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_outofcore.json\n");
  return rss_ok ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main(int argc, char** argv) { return zsky::bench::Main(argc, argv); }
