// Sections 3.3 / 6.2 (data skew and stragglers): how evenly each
// partitioning spreads (a) input points and (b) reduce-side work across
// workers. The straggler indicator is the max/mean reduce-task time: a
// cluster wave finishes when its slowest task does.
//
// Paper behaviour to reproduce: grid partitioning skews badly on clustered
// / high-dimensional data (marginal quantiles do not balance joint
// distributions); Z-order equal-count partitioning keeps input shares
// near-uniform by construction.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "partition/angle_partitioner.h"
#include "partition/grid_partitioner.h"
#include "partition/zorder_grouping.h"
#include "sample/reservoir.h"

namespace zsky::bench {
namespace {

constexpr uint32_t kGroups = 32;

// Max/mean group-size imbalance of a partitioner over a dataset.
double InputImbalance(const Partitioner& partitioner, const PointSet& points,
                      size_t* nonempty) {
  std::vector<size_t> sizes(partitioner.num_groups(), 0);
  size_t routed = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    const int32_t g = partitioner.GroupOf(points[i]);
    if (g < 0) continue;
    sizes[static_cast<size_t>(g)] += 1;
    ++routed;
  }
  size_t filled = 0;
  size_t max_size = 0;
  for (size_t s : sizes) {
    if (s > 0) ++filled;
    max_size = std::max(max_size, s);
  }
  if (nonempty != nullptr) *nonempty = filled;
  const double mean =
      static_cast<double>(routed) / static_cast<double>(sizes.size());
  return mean > 0.0 ? static_cast<double>(max_size) / mean : 0.0;
}

void RunDataset(const char* name, const PointSet& points, std::string& csv) {
  zsky::Rng rng(5);
  const PointSet sample = ReservoirSample(points, 4'000, rng);
  const ZOrderCodec codec(points.dim(), kBits);

  std::vector<std::pair<std::string, std::unique_ptr<Partitioner>>> parts;
  parts.emplace_back("grid",
                     std::make_unique<GridPartitioner>(sample, kGroups));
  parts.emplace_back("angle",
                     std::make_unique<AnglePartitioner>(sample, kGroups));
  ZOrderGroupedPartitioner::Options zopt;
  zopt.num_groups = kGroups;
  zopt.strategy = GroupingStrategy::kDominance;
  parts.emplace_back("zdg", std::make_unique<ZOrderGroupedPartitioner>(
                                &codec, sample, zopt));

  std::printf("\n--- dataset: %s (n=%zu, d=%u) ---\n", name, points.size(),
              points.dim());
  std::printf("%-8s %18s %10s %14s %14s\n", "scheme", "input max/mean",
              "nonempty", "reduce max ms", "reduce skew");
  for (const auto& [label, partitioner] : parts) {
    size_t nonempty = 0;
    const double imbalance = InputImbalance(*partitioner, points, &nonempty);

    // End-to-end run with the matching executor strategy for task-time
    // spread (the actual straggler effect).
    Strategy s{label,
               label == "grid"    ? PartitioningScheme::kGrid
               : label == "angle" ? PartitioningScheme::kAngle
                                  : PartitioningScheme::kZdg,
               LocalAlgorithm::kZSearch,
               label == "zdg" ? MergeAlgorithm::kZMerge
                              : MergeAlgorithm::kZSearch};
    const auto result =
        ParallelSkylineExecutor(MakeOptions(s, kGroups)).Execute(points);
    const auto wave = result.metrics.job1.reduce_stats();
    std::printf("%-8s %17.2fx %10zu %14.2f %13.2fx\n", label.c_str(),
                imbalance, nonempty, wave.max_ms, wave.skew);
    csv += "# CSV,skew," + std::string(name) + "," + label + "," +
           std::to_string(imbalance) + "," + std::to_string(wave.skew) + "\n";
  }
  std::fflush(stdout);
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Skew & stragglers (Sections 3.3/6.2)",
              "per-worker input share and reduce-task time spread",
              "100k points; clustered data is where marginal-quantile "
              "grids break down");
  std::string csv;
  RunDataset("independent-5d",
             MakeData(Distribution::kIndependent, 100'000, 5, 3), csv);
  RunDataset("anticorrelated-5d",
             MakeData(Distribution::kAnticorrelated, 100'000, 5, 4), csv);
  {
    const zsky::Quantizer quantizer(kBits);
    const auto values = zsky::GenerateClustered(100'000, 8, 6, 0.04, 11);
    RunDataset("clustered-8d", quantizer.QuantizeAll(values, 8), csv);
  }
  std::printf("%s", csv.c_str());
  return 0;
}
