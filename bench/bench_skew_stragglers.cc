// Sections 3.3 / 6.2 (data skew and stragglers): how evenly each
// partitioning spreads (a) input points and (b) reduce-side work across
// workers. The straggler indicator is the max/mean reduce-task time: a
// cluster wave finishes when its slowest task does.
//
// Paper behaviour to reproduce: grid partitioning skews badly on clustered
// / high-dimensional data (marginal quantiles do not balance joint
// distributions); Z-order equal-count partitioning keeps input shares
// near-uniform by construction.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "partition/angle_partitioner.h"
#include "partition/grid_partitioner.h"
#include "partition/zorder_grouping.h"
#include "sample/reservoir.h"

namespace zsky::bench {
namespace {

constexpr uint32_t kGroups = 32;
// Simulated cluster slots for the wave-completion skew (cf. sim_workers).
constexpr uint32_t kSimWorkers = 8;

// Max/mean group-size imbalance of a partitioner over a dataset.
double InputImbalance(const Partitioner& partitioner, const PointSet& points,
                      size_t* nonempty) {
  std::vector<size_t> sizes(partitioner.num_groups(), 0);
  size_t routed = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    const int32_t g = partitioner.GroupOf(points[i]);
    if (g < 0) continue;
    sizes[static_cast<size_t>(g)] += 1;
    ++routed;
  }
  size_t filled = 0;
  size_t max_size = 0;
  for (size_t s : sizes) {
    if (s > 0) ++filled;
    max_size = std::max(max_size, s);
  }
  if (nonempty != nullptr) *nonempty = filled;
  const double mean =
      static_cast<double>(routed) / static_cast<double>(sizes.size());
  return mean > 0.0 ? static_cast<double>(max_size) / mean : 0.0;
}

// `map_combine` off shuffles raw group members to the reducers (the
// paper's Section 3.3 baseline, where reduce-side skew is rawest): the
// morsel arm's only early combining is the collapse wave's parallel
// slices, so this is where run collapse shows its full effect.
void RunDataset(const char* name, const PointSet& points, bool map_combine,
                uint32_t groups, std::string& csv) {
  zsky::Rng rng(5);
  const PointSet sample = ReservoirSample(points, 4'000, rng);
  const ZOrderCodec codec(points.dim(), kBits);

  std::vector<std::pair<std::string, std::unique_ptr<Partitioner>>> parts;
  parts.emplace_back("grid",
                     std::make_unique<GridPartitioner>(sample, groups));
  parts.emplace_back("angle",
                     std::make_unique<AnglePartitioner>(sample, groups));
  ZOrderGroupedPartitioner::Options zopt;
  zopt.num_groups = groups;
  zopt.strategy = GroupingStrategy::kDominance;
  parts.emplace_back("zdg", std::make_unique<ZOrderGroupedPartitioner>(
                                &codec, sample, zopt));

  std::printf("\n--- dataset: %s (n=%zu, d=%u) ---\n", name, points.size(),
              points.dim());
  std::printf("%-8s %18s %10s %14s %14s %14s %10s %8s\n", "scheme",
              "input max/mean", "nonempty", "static skew", "morsel skew",
              "stolen/total", "collapse", "match");
  for (const auto& [label, partitioner] : parts) {
    size_t nonempty = 0;
    const double imbalance = InputImbalance(*partitioner, points, &nonempty);

    // End-to-end run with the matching executor strategy for task-time
    // spread (the actual straggler effect). Ablation: the same query with
    // static splits (morsel_scheduling off) vs morsel-driven stealing —
    // the skylines must be bit-identical, only the schedule may differ.
    Strategy s{label,
               label == "grid"    ? PartitioningScheme::kGrid
               : label == "angle" ? PartitioningScheme::kAngle
                                  : PartitioningScheme::kZdg,
               LocalAlgorithm::kZSearch,
               label == "zdg" ? MergeAlgorithm::kZMerge
                              : MergeAlgorithm::kZSearch};
    ExecutorOptions morsel_options = MakeOptions(s, groups);
    // Low collapse target so the oversized-run slicing engages at this
    // bench's 100k scale (the 8192-record default is tuned for millions).
    morsel_options.reduce_morsel_records = 2048;
    morsel_options.enable_combiner = map_combine;
    // Skew arms run serially (one thread, no pool): per-task times are
    // then clean work measurements, and ReduceCompletionSkew schedules
    // them onto the simulated kSimWorkers-slot cluster. Running them
    // under the host's oversubscribed thread pool instead would measure
    // preemption noise, not load balance.
    // Best-of-3 reps per arm (cf. BestMs): sub-millisecond tasks pick up
    // scheduler jitter even when run serially, and the minimum skew is the
    // run least polluted by it.
    constexpr int kReps = 3;
    auto measure = [&](bool morsels, double& best_skew) {
      ExecutorOptions serial = morsel_options;
      serial.morsel_scheduling = morsels;
      serial.reuse_worker_pool = false;
      serial.num_threads = 1;
      SkylineQueryResult result;
      best_skew = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        result = ParallelSkylineExecutor(serial).Execute(points);
        const double skew =
            result.metrics.job1.ReduceCompletionSkew(kSimWorkers);
        if (rep == 0 || skew < best_skew) best_skew = skew;
      }
      return result;
    };
    // Wave-completion skew on the simulated cluster: the straggler
    // indicator the morsel scheduler drives toward 1.0.
    double static_skew = 0.0;
    double morsel_skew = 0.0;
    const auto static_result = measure(false, static_skew);
    const auto morsel_result = measure(true, morsel_skew);
    // A pooled run of the same query exercises the real stealing path:
    // steal counts come from here, and its skyline must also match.
    const auto pooled_result =
        ParallelSkylineExecutor(morsel_options).Execute(points);
    const bool match = static_result.skyline == morsel_result.skyline &&
                       pooled_result.skyline == morsel_result.skyline;
    const size_t stolen = pooled_result.metrics.job1.tasks_stolen +
                          pooled_result.metrics.job2.tasks_stolen;
    const size_t morsels = pooled_result.metrics.job1.morsels_total +
                           pooled_result.metrics.job2.morsels_total;
    std::printf("%-8s %17.2fx %10zu %13.2fx %13.2fx %8zu/%-5zu %5zu/%-4zu %8s\n",
                label.c_str(), imbalance, nonempty, static_skew,
                morsel_skew, stolen, morsels,
                morsel_result.metrics.job1.collapse_tasks,
                morsel_result.metrics.job1.collapsed_runs,
                match ? "yes" : "NO");
    csv += "# CSV,skew," + std::string(name) + "," + label + "," +
           std::to_string(imbalance) + "," + std::to_string(static_skew) +
           "," + std::to_string(morsel_skew) + "," +
           std::to_string(stolen) + "," + std::to_string(morsels) + "," +
           std::to_string(morsel_result.metrics.job1.collapse_tasks) + "," +
           std::to_string(morsel_result.metrics.job1.collapsed_runs) + "\n";
  }
  std::fflush(stdout);
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Skew & stragglers (Sections 3.3/6.2)",
              "per-worker input share and reduce-task time spread",
              "100k points; clustered data is where marginal-quantile "
              "grids break down");
  std::string csv;
  RunDataset("independent-5d",
             MakeData(Distribution::kIndependent, 100'000, 5, 3), true,
             kGroups, csv);
  RunDataset("anticorrelated-5d",
             MakeData(Distribution::kAnticorrelated, 100'000, 5, 4), true,
             kGroups, csv);
  {
    const zsky::Quantizer quantizer(kBits);
    const auto values = zsky::GenerateClustered(100'000, 8, 6, 0.04, 11);
    const zsky::PointSet clustered = quantizer.QuantizeAll(values, 8);
    RunDataset("clustered-8d", clustered, true, kGroups, csv);
  }
  {
    // The headline straggler case: raw shuffles (no map-side combining)
    // on tightly clustered low-dim data leave two reducers each holding a
    // giant run (~40% of all records) whose skyline is small — exactly
    // what run collapse slices away.
    const zsky::Quantizer quantizer(kBits);
    const auto values = zsky::GenerateClustered(100'000, 5, 2, 0.03, 11);
    // One wave: as many groups as simulated slots, so the slowest group
    // gates the whole wave — the textbook straggler shape.
    RunDataset("clustered-5d-raw", quantizer.QuantizeAll(values, 5), false,
               kSimWorkers, csv);
  }
  std::printf("%s", csv.c_str());
  return 0;
}
