// Effect of the number of partitions / groups M (the remaining measured
// parameter of Section 6.1): total time and candidate volume as M varies,
// for the three Z-order strategies and the Grid baseline.
//
// Expected shape: more groups -> better parallelism (map/reduce makespans
// shrink) but more candidates (each group emits its own local skyline),
// so the curve is U-shaped around the cluster's slot count.

#include <string>
#include <vector>

#include "bench_util.h"

namespace zsky::bench {
namespace {

void RunSweep(Distribution distribution) {
  const std::vector<Strategy> strategies{
      {"grid+zs", PartitioningScheme::kGrid, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZSearch},
      {"naive-z", PartitioningScheme::kNaiveZ, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZMerge},
      {"zdg+zm", PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZMerge},
  };
  const size_t n = 100'000;
  const PointSet points = MakeData(distribution, n, 5, 81);
  std::printf("\n--- M sweep (%s, n=%zu, d=5): sim-total ms / candidates "
              "---\n",
              std::string(DistributionName(distribution)).c_str(), n);
  std::printf("%6s", "M");
  for (const auto& s : strategies) std::printf(" %20s", s.label.c_str());
  std::printf("\n");
  std::string csv;
  for (uint32_t m : {4u, 8u, 16u, 32u, 64u, 128u}) {
    std::printf("%6u", m);
    for (const auto& s : strategies) {
      const auto result =
          ParallelSkylineExecutor(MakeOptions(s, m)).Execute(points);
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.1f / %zu",
                    result.metrics.sim_total_ms, result.metrics.candidates);
      std::printf(" %20s", cell);
      csv += "# CSV,msweep," +
             std::string(DistributionName(distribution)) + "," + s.label +
             "," + std::to_string(m) + "," +
             std::to_string(result.metrics.sim_total_ms) + "," +
             std::to_string(result.metrics.candidates) + "\n";
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("%s", csv.c_str());
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Partitions sweep (Section 6.1 parameter)",
              "time & candidates vs number of groups M",
              "100k 5-d points; simulated cluster has M slots");
  RunSweep(Distribution::kIndependent);
  RunSweep(Distribution::kAnticorrelated);
  return 0;
}
