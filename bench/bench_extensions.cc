// Performance of the beyond-the-paper extensions: streaming maintenance,
// sliding-window skylines, distributed k-skyband, and top-k ranking.

#include <string>

#include "algo/ranked.h"
#include "algo/skyband.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/skyband_executor.h"
#include "core/streaming.h"
#include "core/windowed_skyline.h"

namespace zsky::bench {
namespace {

void BenchStreaming() {
  std::printf("\n--- streaming skyline maintenance (insert throughput) ---\n");
  std::printf("%-16s %10s %12s %12s %12s\n", "distribution", "n",
              "frontier", "ms", "points/ms");
  for (auto dist : {Distribution::kCorrelated, Distribution::kIndependent,
                    Distribution::kAnticorrelated}) {
    const size_t n = 200'000;
    const PointSet stream = MakeData(dist, n, 4, 71);
    const ZOrderCodec codec(4, kBits);
    StreamingSkyline sky(&codec);
    Stopwatch watch;
    for (size_t i = 0; i < stream.size(); ++i) {
      sky.Insert(stream[i], static_cast<uint32_t>(i));
    }
    const double ms = watch.ElapsedMs();
    std::printf("%-16s %10zu %12zu %12.1f %12.0f\n",
                std::string(DistributionName(dist)).c_str(), n, sky.size(),
                ms, n / ms);
  }
}

void BenchWindowed() {
  std::printf("\n--- sliding-window skyline (window=10k) ---\n");
  std::printf("%-16s %10s %12s %12s %12s\n", "distribution", "n",
              "critical", "ms", "points/ms");
  for (auto dist : {Distribution::kCorrelated, Distribution::kIndependent}) {
    const size_t n = 200'000;
    const PointSet stream = MakeData(dist, n, 4, 72);
    WindowedSkyline sky(4, 10'000);
    Stopwatch watch;
    for (size_t i = 0; i < stream.size(); ++i) {
      sky.Insert(stream[i], static_cast<uint32_t>(i));
    }
    const double ms = watch.ElapsedMs();
    std::printf("%-16s %10zu %12zu %12.1f %12.0f\n",
                std::string(DistributionName(dist)).c_str(), n,
                sky.critical_size(), ms, n / ms);
  }
}

void BenchSkyband() {
  std::printf("\n--- distributed k-skyband (n=100k, d=4) ---\n");
  std::printf("%6s %12s %12s %12s\n", "k", "band", "candidates",
              "sim-total");
  const PointSet points = MakeData(Distribution::kIndependent, 100'000, 4,
                                   73);
  for (uint32_t k : {1u, 2u, 4u, 8u}) {
    SkybandOptions options;
    options.k = k;
    options.num_groups = 16;
    options.bits = kBits;
    const auto result = DistributedSkyband(points, options);
    std::printf("%6u %12zu %12zu %12.1f\n", k, result.skyline.size(),
                result.metrics.candidates, result.metrics.sim_total_ms);
  }
}

void BenchTopK() {
  std::printf("\n--- top-k skyline ranking (n=100k, d=5) ---\n");
  std::printf("%-16s %12s %12s\n", "metric", "|skyline|", "ms");
  const PointSet points = MakeData(Distribution::kIndependent, 100'000, 5,
                                   74);
  for (SkylineRank rank :
       {SkylineRank::kScoreSum, SkylineRank::kDominanceCount}) {
    Stopwatch watch;
    const auto top = TopKSkyline(points, 10, rank);
    std::printf("%-16s %12zu %12.1f\n",
                std::string(SkylineRankName(rank)).c_str(), top.size(),
                watch.ElapsedMs());
  }
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  PrintBanner("Extensions", "streaming / windowed / skyband / top-k",
              "wall time, single thread");
  BenchStreaming();
  BenchWindowed();
  BenchSkyband();
  BenchTopK();
  return 0;
}
