// Figure 8 (merge efficiency): time of the final candidate-merging phase
// (MR job 2) for Z-merge (ZM) vs re-running Z-search (ZS) vs sort-based
// BNL (SB) over the same ZDG candidates, varying (a, b) data size and
// (c, d) dimensionality.
//
// Paper behaviour to reproduce:
//  - ZM is always fastest; more than 10x faster than SB;
//  - SB's merge time grows quadratically with size and dimensionality;
//  - ZM grows smoothly with dimensionality (index merge, not re-search).

#include <string>
#include <vector>

#include "bench_util.h"

namespace zsky::bench {
namespace {

constexpr uint32_t kGroups = 32;

void RunSweep(const char* figure, const char* axis_name,
              Distribution distribution,
              const std::vector<std::pair<size_t, uint32_t>>& axis) {
  const std::vector<std::pair<const char*, MergeAlgorithm>> merges{
      {"zdg+zm", MergeAlgorithm::kZMerge},
      {"zdg+pzm", MergeAlgorithm::kParallelZMerge},  // Our extension.
      {"zdg+zs", MergeAlgorithm::kZSearch},
      {"zdg+sb", MergeAlgorithm::kSortBased},
  };
  std::printf("\n--- %s: merge-phase time (ms), %s sweep, %s ---\n", figure,
              axis_name, std::string(DistributionName(distribution)).c_str());
  std::printf("%10s %10s", axis_name, "candidates");
  for (const auto& [label, merge] : merges) std::printf(" %10s", label);
  std::printf("\n");
  std::string csv;
  for (const auto& [n, dim] : axis) {
    const PointSet points = MakeData(distribution, n, dim, 31 * n + dim);
    const size_t axis_value =
        std::string_view(axis_name) == "n" ? n : static_cast<size_t>(dim);
    size_t candidates = 0;
    std::vector<double> times;
    for (const auto& [label, merge] : merges) {
      Strategy s{label, PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
                 merge};
      const auto result =
          ParallelSkylineExecutor(MakeOptions(s, kGroups)).Execute(points);
      candidates = result.metrics.candidates;
      times.push_back(result.metrics.sim_job2_ms);
      csv += "# CSV," + std::string(figure) + "," +
             std::string(DistributionName(distribution)) + "," + label + "," +
             std::to_string(axis_value) + "," +
             std::to_string(result.metrics.sim_job2_ms) + "\n";
    }
    std::printf("%10zu %10zu", axis_value, candidates);
    for (double t : times) std::printf(" %10.1f", t);
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("%s", csv.c_str());
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Figure 8", "candidate-merging time: ZM vs ZS vs SB",
              "paper: 20M-110M points; here: 40k-200k points (d sweeps at "
              "40k), simulated-cluster milliseconds");
  const std::vector<std::pair<size_t, uint32_t>> sizes{
      {40'000, 5}, {80'000, 5}, {120'000, 5}, {160'000, 5}, {200'000, 5}};
  RunSweep("fig8a", "n", Distribution::kIndependent, sizes);
  RunSweep("fig8b", "n", Distribution::kAnticorrelated, sizes);
  const std::vector<std::pair<size_t, uint32_t>> dims{
      {40'000, 4}, {40'000, 5}, {40'000, 6}, {40'000, 8}, {40'000, 10}};
  RunSweep("fig8c", "dim", Distribution::kIndependent, dims);
  RunSweep("fig8d", "dim", Distribution::kAnticorrelated, dims);
  return 0;
}
