#ifndef ZSKY_BENCH_BENCH_UTIL_H_
#define ZSKY_BENCH_BENCH_UTIL_H_

// Shared helpers for the figure-reproduction benchmarks. Each bench prints
// a human-readable table mirroring one paper figure plus machine-readable
// "# CSV," rows for plotting.

#include <cstdio>
#include <string>

#include "common/quantizer.h"
#include "core/executor.h"
#include "core/options.h"
#include "gen/synthetic.h"

namespace zsky::bench {

inline constexpr uint32_t kBits = 16;

inline PointSet MakeData(Distribution d, size_t n, uint32_t dim,
                         uint64_t seed) {
  return GenerateQuantized(d, n, dim, seed, Quantizer(kBits));
}

// A named strategy configuration, e.g. {"grid+sb", ...}.
struct Strategy {
  std::string label;
  PartitioningScheme partitioning;
  LocalAlgorithm local;
  MergeAlgorithm merge;
};

inline ExecutorOptions MakeOptions(const Strategy& strategy,
                                   uint32_t num_groups) {
  ExecutorOptions options;
  options.partitioning = strategy.partitioning;
  options.local = strategy.local;
  options.merge = strategy.merge;
  options.num_groups = num_groups;
  options.bits = kBits;
  return options;
}

inline void PrintBanner(const char* figure, const char* what,
                        const char* scale_note) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s: %s\n", figure, what);
  std::printf("scale: %s\n", scale_note);
  std::printf("==============================================================="
              "=\n");
}

}  // namespace zsky::bench

#endif  // ZSKY_BENCH_BENCH_UTIL_H_
