// Scheduling bench (docs/scheduling.md): the three headline numbers of
// the morsel-driven scheduler + cost-based planner, emitted to
// BENCH_sched.json for the scripts/check.sh `sched` gate.
//
//  1. skew      — wave-completion skew of the straggler workload (raw
//                 shuffle, tightly clustered 5d data, one wave of
//                 as-many-groups-as-slots) under static splits vs morsel
//                 scheduling + run collapse. Acceptance: >= 2x reduction
//                 with bit-identical skylines.
//  2. end_to_end — the bench_hotpath 500k x 8d pipeline with morsel
//                 scheduling on vs off. The scheduler must not tax the
//                 balanced case: check.sh gates sched_ms against
//                 BENCH_hotpath.json's hotpath_ms.
//  3. planner   — ChoosePlan's predicted vs measured stage times on two
//                 contrasting datasets (the adaptive-serving feedback
//                 signal, before any calibration).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/planner.h"
#include "partition/angle_partitioner.h"
#include "partition/grid_partitioner.h"
#include "sample/reservoir.h"

namespace zsky::bench {
namespace {

constexpr int kReps = 3;
// Simulated cluster slots for the wave-completion skew.
constexpr uint32_t kSimWorkers = 8;

template <typename Fn>
double BestMs(const Fn& fn, int reps = kReps) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    Stopwatch watch;
    fn();
    const double ms = watch.ElapsedMs();
    if (r == 0 || ms < best) best = ms;
  }
  return best;
}

// --- 1. Straggler ablation (mirrors bench_skew_stragglers's headline
// dataset): raw shuffles of 2-cluster 5d data into kSimWorkers groups
// leave two reducers holding ~40% of all records each. ---
struct SkewResult {
  double static_skew = 0.0;
  double morsel_skew = 0.0;
  bool identical = false;
  size_t stolen = 0;
  size_t collapse_tasks = 0;
  double Reduction() const {
    return morsel_skew > 0.0 ? static_skew / morsel_skew : 0.0;
  }
};

SkewResult BenchSkew(const PointSet& points, PartitioningScheme scheme) {
  ExecutorOptions base;
  base.partitioning = scheme;
  base.local = LocalAlgorithm::kZSearch;
  base.merge = MergeAlgorithm::kZSearch;
  base.num_groups = kSimWorkers;
  base.bits = kBits;
  // Raw shuffle (the paper's Section 3.3 baseline) + a collapse target
  // sized for this bench's 100k scale.
  base.enable_combiner = false;
  base.reduce_morsel_records = 2048;

  // Serial best-of-kReps runs give clean per-task work times; the skew
  // schedules them onto the simulated cluster (see bench_skew_stragglers).
  SkewResult result;
  SkylineIndices static_skyline;
  SkylineIndices morsel_skyline;
  auto measure = [&](bool morsels, SkylineIndices& skyline) {
    ExecutorOptions serial = base;
    serial.morsel_scheduling = morsels;
    serial.reuse_worker_pool = false;
    serial.num_threads = 1;
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto run = ParallelSkylineExecutor(serial).Execute(points);
      const double skew = run.metrics.job1.ReduceCompletionSkew(kSimWorkers);
      if (rep == 0 || skew < best) best = skew;
      skyline = run.skyline;
      result.collapse_tasks = run.metrics.job1.collapse_tasks;
    }
    return best;
  };
  result.static_skew = measure(false, static_skyline);
  result.collapse_tasks = 0;  // Reset: the static arm must not collapse.
  result.morsel_skew = measure(true, morsel_skyline);

  // A pooled run exercises the real stealing path; its skyline must match.
  const auto pooled = ParallelSkylineExecutor(base).Execute(points);
  result.identical = static_skyline == morsel_skyline &&
                     pooled.skyline == morsel_skyline;
  result.stolen =
      pooled.metrics.job1.tasks_stolen + pooled.metrics.job2.tasks_stolen;
  return result;
}

// --- 2. End-to-end guard: bench_hotpath's full-speed 500k x 8d pipeline,
// morsel scheduling on vs off. ---
ExecutorOptions HotOptions(bool morsels) {
  ExecutorOptions options;
  options.bits = kBits;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.num_map_tasks = 16;
  options.num_threads = 4;
  options.reuse_worker_pool = true;
  options.parallel_shuffle = true;
  options.use_block_kernel = true;
  options.zero_copy_shuffle = true;
  options.morsel_scheduling = morsels;
  return options;
}

struct EndToEnd {
  double static_ms = 0.0;
  double sched_ms = 0.0;
  bool identical = false;
  size_t stolen = 0;
  size_t morsels = 0;
};

EndToEnd BenchEndToEnd(const PointSet& points) {
  EndToEnd result;
  SkylineIndices static_skyline;
  SkylineIndices sched_skyline;
  {
    const ParallelSkylineExecutor executor(HotOptions(false));
    result.static_ms =
        BestMs([&] { static_skyline = executor.Execute(points).skyline; });
  }
  {
    const ParallelSkylineExecutor executor(HotOptions(true));
    result.sched_ms = BestMs([&] {
      const auto run = executor.Execute(points);
      sched_skyline = run.skyline;
      result.stolen =
          run.metrics.job1.tasks_stolen + run.metrics.job2.tasks_stolen;
      result.morsels =
          run.metrics.job1.morsels_total + run.metrics.job2.morsels_total;
    });
  }
  result.identical = static_skyline == sched_skyline;
  return result;
}

// --- 3. Cost-based planner: predicted vs measured stage times, with the
// default (uncalibrated) cost model. ---
struct PlannerResult {
  std::string dataset;
  std::string chosen;
  size_t candidates = 0;
  double predicted_ms = 0.0;
  double actual_ms = 0.0;
  bool identical = false;
  double RelErrPct() const {
    return actual_ms > 0.0
               ? 100.0 * (predicted_ms - actual_ms) / actual_ms
               : 0.0;
  }
};

PlannerResult BenchPlanner(const char* name, const PointSet& points) {
  PlannerResult result;
  result.dataset = name;
  ExecutorOptions base;
  base.bits = kBits;
  base.num_threads = 4;
  const PlanChoice choice = ChoosePlan(points, base);
  result.chosen = choice.options.Label() + "/g" +
                  std::to_string(choice.options.num_groups);
  result.candidates = choice.candidates.size();
  result.predicted_ms = choice.predicted_total_ms;
  const ParallelSkylineExecutor executor(choice.options);
  SkylineIndices skyline;
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto run = executor.Execute(points);
    const double ms = run.metrics.job1_ms + run.metrics.job2_ms;
    if (rep == 0 || ms < best) best = ms;
    skyline = run.skyline;
  }
  result.actual_ms = best;
  // The chosen plan must still be exact.
  ExecutorOptions reference = base;
  reference.morsel_scheduling = false;
  result.identical =
      skyline == ParallelSkylineExecutor(reference).Execute(points).skyline;
  return result;
}

void WriteJson(const SkewResult& grid, const SkewResult& angle,
               const EndToEnd& e2e, const PlannerResult& p1,
               const PlannerResult& p2) {
  std::FILE* f = std::fopen("BENCH_sched.json", "w");
  if (f == nullptr) {
    std::printf("!! cannot write BENCH_sched.json\n");
    return;
  }
  std::fprintf(f, "{\n");
  auto skew = [&](const char* name, const SkewResult& s, bool last) {
    std::fprintf(f,
                 "    \"%s\": {\"static_skew\": %.3f, \"morsel_skew\": %.3f, "
                 "\"reduction\": %.3f, \"identical\": %s, \"stolen\": %zu, "
                 "\"collapse_tasks\": %zu}%s\n",
                 name, s.static_skew, s.morsel_skew, s.Reduction(),
                 s.identical ? "true" : "false", s.stolen, s.collapse_tasks,
                 last ? "" : ",");
  };
  std::fprintf(f,
               "  \"skew\": {\n"
               "    \"dataset\": \"clustered-5d-raw 100k, 2 clusters\",\n"
               "    \"sim_workers\": %u,\n",
               kSimWorkers);
  skew("grid", grid, false);
  skew("angle", angle, true);
  std::fprintf(f, "  },\n");
  std::fprintf(f,
               "  \"end_to_end\": {\"workload\": \"independent 500k x 8d\", "
               "\"static_ms\": %.3f, \"sched_ms\": %.3f, \"identical\": %s, "
               "\"stolen\": %zu, \"morsels\": %zu},\n",
               e2e.static_ms, e2e.sched_ms, e2e.identical ? "true" : "false",
               e2e.stolen, e2e.morsels);
  auto planner = [&](const PlannerResult& p, bool last) {
    std::fprintf(f,
                 "    {\"dataset\": \"%s\", \"chosen\": \"%s\", "
                 "\"candidates\": %zu, \"predicted_ms\": %.3f, "
                 "\"actual_ms\": %.3f, \"rel_err_pct\": %.1f, "
                 "\"identical\": %s}%s\n",
                 p.dataset.c_str(), p.chosen.c_str(), p.candidates,
                 p.predicted_ms, p.actual_ms, p.RelErrPct(),
                 p.identical ? "true" : "false", last ? "" : ",");
  };
  std::fprintf(f, "  \"planner\": [\n");
  planner(p1, false);
  planner(p2, true);
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_sched.json\n");
}

int Main() {
  PrintBanner("sched", "morsel scheduling + cost-based planner headline",
              "skew ablation, hotpath guard, planner error");

  const Quantizer quantizer(kBits);
  const auto clustered_values = GenerateClustered(100'000, 5, 2, 0.03, 11);
  const PointSet clustered = quantizer.QuantizeAll(clustered_values, 5);
  const SkewResult grid = BenchSkew(clustered, PartitioningScheme::kGrid);
  const SkewResult angle = BenchSkew(clustered, PartitioningScheme::kAngle);
  std::printf("%-8s %12s %12s %10s %8s %8s\n", "skew", "static", "morsel",
              "reduction", "stolen", "match");
  std::printf("%-8s %11.2fx %11.2fx %9.2fx %8zu %8s\n", "grid",
              grid.static_skew, grid.morsel_skew, grid.Reduction(),
              grid.stolen, grid.identical ? "yes" : "NO");
  std::printf("%-8s %11.2fx %11.2fx %9.2fx %8zu %8s\n", "angle",
              angle.static_skew, angle.morsel_skew, angle.Reduction(),
              angle.stolen, angle.identical ? "yes" : "NO");

  const PointSet hot = MakeData(Distribution::kIndependent, 500'000, 8, 42);
  const EndToEnd e2e = BenchEndToEnd(hot);
  std::printf("\nend-to-end 500kx8d: static %.1fms, sched %.1fms "
              "(stolen %zu / %zu morsels), identical=%s\n",
              e2e.static_ms, e2e.sched_ms, e2e.stolen, e2e.morsels,
              e2e.identical ? "yes" : "NO");

  const PlannerResult p1 =
      BenchPlanner("correlated-4d-100k",
                   MakeData(Distribution::kCorrelated, 100'000, 4, 7));
  const PlannerResult p2 =
      BenchPlanner("anticorrelated-8d-50k",
                   MakeData(Distribution::kAnticorrelated, 50'000, 8, 9));
  std::printf("\n%-24s %-18s %12s %12s %8s %6s\n", "planner", "chosen",
              "predicted", "actual", "err", "match");
  for (const PlannerResult* p : {&p1, &p2}) {
    std::printf("%-24s %-18s %10.1fms %10.1fms %+6.0f%% %6s\n",
                p->dataset.c_str(), p->chosen.c_str(), p->predicted_ms,
                p->actual_ms, p->RelErrPct(), p->identical ? "yes" : "NO");
  }

  std::printf("\n# CSV,skew,grid,%.3f,%.3f,%.3f\n", grid.static_skew,
              grid.morsel_skew, grid.Reduction());
  std::printf("# CSV,skew,angle,%.3f,%.3f,%.3f\n", angle.static_skew,
              angle.morsel_skew, angle.Reduction());
  std::printf("# CSV,end_to_end,%.3f,%.3f\n", e2e.static_ms, e2e.sched_ms);
  std::printf("# CSV,planner,%s,%.3f,%.3f\n", p1.chosen.c_str(),
              p1.predicted_ms, p1.actual_ms);
  std::printf("# CSV,planner,%s,%.3f,%.3f\n", p2.chosen.c_str(),
              p2.predicted_ms, p2.actual_ms);

  WriteJson(grid, angle, e2e, p1, p2);
  const bool ok = grid.identical && angle.identical && e2e.identical &&
                  p1.identical && p2.identical && grid.Reduction() >= 2.0;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main() { return zsky::bench::Main(); }
