// Shuffle throughput bench (PR 5): drives the MapReduce engine's record
// path — legacy (std::function emit, vector-of-pairs buckets,
// unordered_map regroup) vs zero-copy columnar (chunked arenas, counting
// sort, span reduce) — through a shuffle-heavy job and reports records/sec,
// bytes copied, bytes allocated, and peak RSS; then the disk spill, a
// memory-budget sweep, and the end-to-end 500k x 8d pipeline with a
// bit-identical skyline check. Emits BENCH_shuffle.json; `scripts/check.sh
// shuffle` gates on zero_copy_records_per_sec against the committed copy.

#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "algo/bnl.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "mapreduce/job.h"

namespace zsky::bench {
namespace {

constexpr int kReps = 3;
constexpr size_t kTasks = 16;
constexpr uint64_t kPerTask = 500000;  // 8M records total.
constexpr size_t kRecords = kTasks * kPerTask;
constexpr uint32_t kReducers = 8;

double PeakRssMb() {
  struct rusage usage{};
  ::getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux.
}

struct PathResult {
  double total_ms = 1e300;    // Whole job: map emit + shuffle + reduce.
  double shuffle_ms = 1e300;  // The shuffle stage alone.
  size_t copy_bytes = 0;
  size_t alloc_bytes = 0;  // From the warm (best) run.
  uint64_t checksum = 0;

  double RecordsPerSec() const {
    return total_ms > 0.0 ? static_cast<double>(kRecords) /
                                (total_ms / 1000.0)
                          : 0.0;
  }
};

// One shuffle-heavy job: trivial map emit and reduce sum, so the wall
// time is the record path itself. `reuse` keeps one job across reps to
// measure the steady (pooled) state of the columnar path; the legacy
// path has no cross-run state, so reuse is a no-op for it.
PathResult RunPath(bool legacy, bool spill, size_t budget_bytes) {
  mr::MapReduceJob<uint64_t>::Options options;
  options.num_reduce_tasks = kReducers;
  options.num_threads = 4;
  options.legacy_record_path = legacy;
  options.spill_to_disk = spill;
  options.shuffle_memory_budget_bytes = budget_bytes;
  mr::MapReduceJob<uint64_t> job(options);
  PathResult result;
  for (int r = 0; r < kReps; ++r) {
    std::atomic<uint64_t> sum{0};
    Stopwatch watch;
    const mr::JobMetrics metrics = job.Run(
        kTasks,
        [](size_t task, auto& emit) {
          for (uint64_t v = 0; v < kPerTask; ++v) {
            emit(static_cast<int32_t>((task + v) % 64), v);
          }
        },
        nullptr,
        [&sum](int32_t, std::span<const uint64_t> values) {
          uint64_t local = 0;
          for (uint64_t v : values) local += v;
          sum.fetch_add(local, std::memory_order_relaxed);
        });
    const double total_ms = watch.ElapsedMs();
    if (total_ms < result.total_ms) {
      result.total_ms = total_ms;
      result.shuffle_ms = metrics.shuffle_wall_ms;
      result.copy_bytes = metrics.shuffle_copy_bytes;
      result.alloc_bytes = metrics.shuffle_alloc_bytes;
    }
    result.checksum = sum.load();
  }
  return result;
}

struct BudgetPoint {
  size_t budget_mb;
  size_t spilled_tasks;
  size_t spill_bytes;
  double total_ms;
};

BudgetPoint RunBudget(size_t budget_mb) {
  mr::MapReduceJob<uint64_t>::Options options;
  options.num_reduce_tasks = kReducers;
  options.num_threads = 4;
  options.shuffle_memory_budget_bytes = budget_mb * 1024 * 1024;
  mr::MapReduceJob<uint64_t> job(options);
  BudgetPoint point{budget_mb, 0, 0, 1e300};
  for (int r = 0; r < kReps; ++r) {
    Stopwatch watch;
    const mr::JobMetrics metrics = job.Run(
        kTasks,
        [](size_t task, auto& emit) {
          for (uint64_t v = 0; v < kPerTask; ++v) {
            emit(static_cast<int32_t>((task + v) % 64), v);
          }
        },
        nullptr,
        [](int32_t, std::span<const uint64_t> values) {
          volatile uint64_t sink = 0;
          for (uint64_t v : values) sink = sink + v;
        });
    point.total_ms = std::min(point.total_ms, watch.ElapsedMs());
    point.spilled_tasks = metrics.spilled_tasks;
    point.spill_bytes = metrics.spill_bytes;
  }
  return point;
}

// --- End-to-end skyline-by-MapReduce, points as record payloads. ---
//
// The executor pipeline ships 4-byte row ids and prunes map-side, so its
// shuffle is ~3% of a query — by design. The paper's Hadoop setting has
// no shared memory: mappers ship the points themselves. This job
// reproduces that shape end to end — map emits (group, point records),
// reducers compute local skylines, a final merge yields the global
// skyline — so the record path carries the real 36-byte payload volume.
// Correlated data keeps the skyline compute small; what remains is the
// record pipeline under test. Output is checked bit-identical between
// both paths and against the BNL oracle.
struct PointRec {
  uint32_t row;
  Coord coords[8];
};
static_assert(std::is_trivially_copyable_v<PointRec>);

bool Dominates8(const Coord* a, const Coord* b) {
  bool strict = false;
  for (int d = 0; d < 8; ++d) {
    if (a[d] > b[d]) return false;
    if (a[d] < b[d]) strict = true;
  }
  return strict;
}

struct EndToEnd {
  double legacy_ms = 0.0;
  double zero_copy_ms = 0.0;
  bool identical = false;
  size_t skyline = 0;

  double Speedup() const {
    return zero_copy_ms > 0.0 ? legacy_ms / zero_copy_ms : 0.0;
  }
};

std::vector<uint32_t> SkylineByMapReduce(const PointSet& points, bool legacy,
                                         double* best_ms) {
  constexpr size_t kMapTasks = 16;
  constexpr uint32_t kGroups = 8;
  mr::MapReduceJob<PointRec>::Options options;
  options.num_reduce_tasks = kGroups;
  options.num_threads = 4;
  options.legacy_record_path = legacy;
  mr::MapReduceJob<PointRec> job(options);
  const size_t n = points.size();
  std::vector<uint32_t> rows;
  for (int r = 0; r < kReps; ++r) {
    std::vector<std::vector<PointRec>> partials(kGroups);
    Stopwatch watch;
    job.Run(
        kMapTasks,
        [&](size_t task, auto& emit) {
          const size_t begin = task * n / kMapTasks;
          const size_t end = (task + 1) * n / kMapTasks;
          for (size_t i = begin; i < end; ++i) {
            PointRec rec;
            rec.row = static_cast<uint32_t>(i);
            const auto p = points[i];
            std::copy(p.begin(), p.end(), rec.coords);
            emit(static_cast<int32_t>(i % kGroups), rec);
          }
        },
        nullptr,
        [&partials](int32_t key, std::span<const PointRec> values) {
          // BNL over the group: one reducer per key, no races.
          auto& window = partials[static_cast<uint32_t>(key)];
          for (const PointRec& rec : values) {
            bool dominated = false;
            size_t w = 0;
            while (w < window.size()) {
              if (Dominates8(window[w].coords, rec.coords)) {
                dominated = true;
                break;
              }
              if (Dominates8(rec.coords, window[w].coords)) {
                window[w] = window.back();
                window.pop_back();
              } else {
                ++w;
              }
            }
            if (!dominated) window.push_back(rec);
          }
        });
    // Merge: the global skyline is the skyline of the local unions.
    std::vector<PointRec> cands;
    for (const auto& p : partials) cands.insert(cands.end(), p.begin(), p.end());
    rows.clear();
    for (const PointRec& c : cands) {
      bool dominated = false;
      for (const PointRec& o : cands) {
        if (o.row != c.row && Dominates8(o.coords, c.coords)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) rows.push_back(c.row);
    }
    std::sort(rows.begin(), rows.end());
    *best_ms = std::min(*best_ms, watch.ElapsedMs());
  }
  return rows;
}

EndToEnd BenchEndToEnd(const PointSet& points) {
  EndToEnd result;
  result.legacy_ms = 1e300;
  result.zero_copy_ms = 1e300;
  const std::vector<uint32_t> legacy =
      SkylineByMapReduce(points, true, &result.legacy_ms);
  const std::vector<uint32_t> zero_copy =
      SkylineByMapReduce(points, false, &result.zero_copy_ms);
  SkylineIndices oracle = BnlSkyline(points);
  std::sort(oracle.begin(), oracle.end());
  result.identical = legacy == zero_copy && zero_copy == oracle;
  result.skyline = zero_copy.size();
  return result;
}

void WriteJson(const char* path, const PathResult& legacy,
               const PathResult& zero_copy, const PathResult& legacy_spill,
               const PathResult& zero_copy_spill,
               const std::vector<BudgetPoint>& sweep, double peak_rss_mb,
               const EndToEnd& e2e) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("!! cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": {\"records\": %zu, \"map_tasks\": %zu, "
               "\"reducers\": %u, \"value_bytes\": 8},\n",
               kRecords, kTasks, kReducers);
  // One key per line: scripts/check.sh greps these with awk.
  std::fprintf(f, "  \"legacy_records_per_sec\": %.0f,\n",
               legacy.RecordsPerSec());
  std::fprintf(f, "  \"zero_copy_records_per_sec\": %.0f,\n",
               zero_copy.RecordsPerSec());
  std::fprintf(f, "  \"records_per_sec_speedup\": %.3f,\n",
               legacy.total_ms > 0.0 && zero_copy.total_ms > 0.0
                   ? legacy.total_ms / zero_copy.total_ms
                   : 0.0);
  auto section = [&](const char* name, const PathResult& p) {
    std::fprintf(f,
                 "  \"%s\": {\"total_ms\": %.3f, \"shuffle_ms\": %.3f, "
                 "\"copy_bytes\": %zu, \"alloc_bytes\": %zu},\n",
                 name, p.total_ms, p.shuffle_ms, p.copy_bytes, p.alloc_bytes);
  };
  section("legacy", legacy);
  section("zero_copy", zero_copy);
  section("legacy_spill", legacy_spill);
  section("zero_copy_spill", zero_copy_spill);
  std::fprintf(f, "  \"budget_sweep_mb\": [");
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::fprintf(f, "%s{\"budget_mb\": %zu, \"spilled_tasks\": %zu, "
                 "\"spill_bytes\": %zu, \"total_ms\": %.3f}",
                 i == 0 ? "" : ", ", sweep[i].budget_mb,
                 sweep[i].spilled_tasks, sweep[i].spill_bytes,
                 sweep[i].total_ms);
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"peak_rss_mb\": %.1f,\n", peak_rss_mb);
  // Skyline-by-MapReduce with point payloads — the paper's cluster shape
  // (no shared memory, mappers ship points), where the record path is
  // the dominant cost; the executor pipeline itself ships row ids and
  // keeps its shuffle at ~3% of a query (see docs/mapreduce.md).
  std::fprintf(f,
               "  \"end_to_end\": {\"job\": \"skyline_by_mapreduce\", "
               "\"n\": 500000, \"dim\": 8, "
               "\"distribution\": \"correlated\", "
               "\"legacy_ms\": %.3f, \"zero_copy_ms\": %.3f, "
               "\"speedup\": %.3f, \"identical\": %s, "
               "\"skyline_size\": %zu}\n",
               e2e.legacy_ms, e2e.zero_copy_ms, e2e.Speedup(),
               e2e.identical ? "true" : "false", e2e.skyline);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  PrintBanner("shuffle", "zero-copy columnar record path vs legacy",
              "8M records through map/shuffle/reduce; 500k x 8d end-to-end");

  const PathResult legacy = RunPath(true, false, 0);
  const PathResult zero_copy = RunPath(false, false, 0);
  std::printf("%-24s %10s %10s %14s %12s\n", "path", "total", "shuffle",
              "records/sec", "copied");
  auto row = [](const char* name, const PathResult& p) {
    std::printf("%-24s %8.1fms %8.1fms %12.2fM/s %9.1fMB\n", name, p.total_ms,
                p.shuffle_ms, p.RecordsPerSec() / 1e6,
                static_cast<double>(p.copy_bytes) / 1048576.0);
  };
  row("legacy", legacy);
  row("zero-copy", zero_copy);
  if (legacy.checksum != zero_copy.checksum) {
    std::printf("!! record-path checksums DIVERGED\n");
    return 1;
  }

  const PathResult legacy_spill = RunPath(true, true, 0);
  const PathResult zero_copy_spill = RunPath(false, true, 0);
  row("legacy+spill", legacy_spill);
  row("zero-copy+spill", zero_copy_spill);
  if (legacy_spill.checksum != zero_copy_spill.checksum) {
    std::printf("!! spill checksums DIVERGED\n");
    return 1;
  }

  // Budget sweep: 96 MB of buffered records; smaller budgets spill more.
  std::vector<BudgetPoint> sweep;
  std::printf("%-24s %14s %14s %10s\n", "budget", "spilled_tasks",
              "spill_bytes", "total");
  for (const size_t budget_mb : {128u, 64u, 32u, 16u, 8u}) {
    sweep.push_back(RunBudget(budget_mb));
    const BudgetPoint& p = sweep.back();
    std::printf("%21zuMB %14zu %13.1fMB %8.1fms\n", p.budget_mb,
                p.spilled_tasks,
                static_cast<double>(p.spill_bytes) / 1048576.0, p.total_ms);
  }

  const PointSet points = MakeData(Distribution::kCorrelated, 500000, 8, 42);
  const EndToEnd e2e = BenchEndToEnd(points);
  std::printf("%-24s %8.1fms %8.1fms %7.2fx  identical=%s\n",
              "e2e skyline-by-MR 500kx8d", e2e.legacy_ms, e2e.zero_copy_ms,
              e2e.Speedup(), e2e.identical ? "yes" : "NO");

  const double peak_rss_mb = PeakRssMb();
  std::printf("peak RSS: %.1f MB\n", peak_rss_mb);

  std::printf("# CSV,path,total_ms,shuffle_ms,records_per_sec\n");
  std::printf("# CSV,legacy,%.3f,%.3f,%.0f\n", legacy.total_ms,
              legacy.shuffle_ms, legacy.RecordsPerSec());
  std::printf("# CSV,zero_copy,%.3f,%.3f,%.0f\n", zero_copy.total_ms,
              zero_copy.shuffle_ms, zero_copy.RecordsPerSec());
  std::printf("# CSV,legacy_spill,%.3f,%.3f,%.0f\n", legacy_spill.total_ms,
              legacy_spill.shuffle_ms, legacy_spill.RecordsPerSec());
  std::printf("# CSV,zero_copy_spill,%.3f,%.3f,%.0f\n",
              zero_copy_spill.total_ms, zero_copy_spill.shuffle_ms,
              zero_copy_spill.RecordsPerSec());

  WriteJson("BENCH_shuffle.json", legacy, zero_copy, legacy_spill,
            zero_copy_spill, sweep, peak_rss_mb, e2e);
  return e2e.identical ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main() { return zsky::bench::Main(); }
