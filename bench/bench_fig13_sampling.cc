// Figure 13 (effect of data sampling): candidates, preprocessing time and
// total query time for Naive-Z / ZHG / ZDG as the sampling ratio varies
// from 0.5% to 4% (independent distribution, as in the paper).
//
// Paper behaviour to reproduce:
//  - more sampling -> fewer candidates for all three Z-order variants;
//  - ZDG produces the fewest candidates and the best query time;
//  - ZDG pays the highest preprocessing cost (dominance matrix), but the
//    investment is recovered in stages 2-3;
//  - ZDG is the least sensitive to the sampling ratio (dominance volumes
//    are region properties, not sample-count properties).

#include <string>
#include <vector>

#include "bench_util.h"

namespace zsky::bench {
namespace {

constexpr uint32_t kGroups = 32;
constexpr size_t kN = 150'000;

void RunRatio(const char* figure, double ratio, std::string& csv,
              const PointSet& points) {
  const std::vector<Strategy> strategies{
      {"naive-z", PartitioningScheme::kNaiveZ, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZMerge},
      {"zhg", PartitioningScheme::kZhg, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZMerge},
      {"zdg", PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
       MergeAlgorithm::kZMerge},
  };
  std::printf("%9.1f%%", 100.0 * ratio);
  for (const auto& s : strategies) {
    ExecutorOptions options = MakeOptions(s, kGroups);
    options.sample_ratio = ratio;
    const auto result = ParallelSkylineExecutor(options).Execute(points);
    std::printf("   %8zu %8.1f %8.1f", result.metrics.candidates,
                result.metrics.preprocess_ms, result.metrics.sim_total_ms);
    csv += "# CSV," + std::string(figure) + "," + s.label + "," +
           std::to_string(ratio) + "," +
           std::to_string(result.metrics.candidates) + "," +
           std::to_string(result.metrics.preprocess_ms) + "," +
           std::to_string(result.metrics.sim_total_ms) + "\n";
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  using zsky::Distribution;
  PrintBanner("Figure 13", "effect of the sampling ratio on Naive-Z/ZHG/ZDG",
              "paper: 0.5%-4% samples of a large independent dataset; here: "
              "same ratios over 150k points");
  const zsky::PointSet points =
      MakeData(Distribution::kIndependent, kN, 5, 77);
  std::printf("%10s   %26s   %26s   %26s\n", "", "naive-z", "zhg", "zdg");
  std::printf("%10s", "ratio");
  for (int i = 0; i < 3; ++i) {
    std::printf("   %8s %8s %8s", "cand", "pre-ms", "total");
  }
  std::printf("\n");
  std::string csv;
  for (double ratio : {0.005, 0.01, 0.02, 0.04}) {
    RunRatio("fig13", ratio, csv, points);
  }
  std::printf("%s", csv.c_str());
  return 0;
}
