// Tracing overhead bench: the end-to-end pipeline (500k x 8d, hot-path
// configuration) with the span tracer disabled vs armed, best-of-3. With
// tracing compiled in but disabled every call site costs one relaxed
// atomic load; compiled out (-DZSKY_TRACING=OFF) the call sites vanish —
// run this binary from such a build to measure that configuration (the
// "tracing_compiled" flag in BENCH_trace.json records which one ran).

#include <cstdio>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/trace.h"

namespace zsky::bench {
namespace {

constexpr int kReps = 5;

ExecutorOptions PipelineOptions() {
  ExecutorOptions options;
  options.bits = kBits;
  options.partitioning = PartitioningScheme::kZdg;
  options.local = LocalAlgorithm::kZSearch;
  options.merge = MergeAlgorithm::kZMerge;
  options.num_groups = 8;
  options.num_map_tasks = 16;
  options.num_threads = 4;
  return options;
}

int Main() {
  constexpr size_t kN = 500000;
  constexpr uint32_t kDim = 8;
  PrintBanner("trace", "span tracing overhead on the end-to-end pipeline",
              "500k x 8d Execute, tracer disabled vs armed, best-of-3");

  const PointSet points = MakeData(Distribution::kIndependent, kN, kDim, 42);
  const ParallelSkylineExecutor executor(PipelineOptions());
  trace::Tracer& tracer = trace::Tracer::Global();

  // Interleave the two configurations (disabled, armed, disabled, ...)
  // and take best-of-k of each, so slow phases of a loaded host hit both
  // sides instead of biasing whichever ran second.
  SkylineIndices disabled_skyline;
  SkylineIndices enabled_skyline;
  double disabled_ms = 0.0;
  double enabled_ms = 0.0;
  size_t spans_per_query = 0;
  for (int r = 0; r < kReps; ++r) {
    tracer.SetEnabled(false);
    {
      Stopwatch watch;
      disabled_skyline = executor.Execute(points).skyline;
      const double ms = watch.ElapsedMs();
      if (r == 0 || ms < disabled_ms) disabled_ms = ms;
    }
    tracer.SetEnabled(true);
    tracer.Clear();
    {
      Stopwatch watch;
      enabled_skyline = executor.Execute(points).skyline;
      const double ms = watch.ElapsedMs();
      if (r == 0 || ms < enabled_ms) enabled_ms = ms;
    }
    spans_per_query = tracer.Snapshot().size();
  }
  tracer.SetEnabled(false);

  const bool identical = disabled_skyline == enabled_skyline;
  const double overhead_pct =
      disabled_ms > 0.0 ? (enabled_ms - disabled_ms) / disabled_ms * 100.0
                        : 0.0;
  const bool compiled = ZSKY_TRACING_ENABLED != 0;

  std::printf("tracing compiled %s\n", compiled ? "IN" : "OUT");
  std::printf("%-24s %9.1fms\n", "tracer disabled", disabled_ms);
  std::printf("%-24s %9.1fms  (%zu spans/query)\n", "tracer armed",
              enabled_ms, spans_per_query);
  std::printf("%-24s %+8.2f%%  identical=%s\n", "overhead", overhead_pct,
              identical ? "yes" : "NO");

  std::printf("# CSV,config,disabled_ms,enabled_ms,overhead_pct,spans\n");
  std::printf("# CSV,%s,%.3f,%.3f,%.3f,%zu\n",
              compiled ? "compiled_in" : "compiled_out", disabled_ms,
              enabled_ms, overhead_pct, spans_per_query);

  // One binary measures one compile configuration; the committed
  // BENCH_trace.json merges the "configs" entries of a ZSKY_TRACING=ON
  // and a ZSKY_TRACING=OFF run.
  std::FILE* f = std::fopen("BENCH_trace.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"workload\": {\"n\": %zu, \"dim\": %u, "
                 "\"distribution\": \"independent\"},\n"
                 "  \"configs\": {\n"
                 "    \"%s\": {\"disabled_ms\": %.3f, \"enabled_ms\": %.3f, "
                 "\"overhead_pct\": %.3f, \"spans_per_query\": %zu, "
                 "\"identical\": %s}\n"
                 "  }\n"
                 "}\n",
                 kN, kDim, compiled ? "compiled_in" : "compiled_out",
                 disabled_ms, enabled_ms, overhead_pct, spans_per_query,
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_trace.json\n");
  } else {
    std::printf("!! cannot write BENCH_trace.json\n");
  }
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main() { return zsky::bench::Main(); }
