// Write-path bench: incremental maintenance vs full rebuild on 500k x 8d.
// Four headline numbers, emitted to BENCH_updates.json:
//   - dominated_insert_speedup: a 1k-row batch of provably dominated inserts
//     (absorbed by the sample-skyline fast path) + one query, vs rebuilding
//     the dataset from scratch for the same rows. Gate: >= 10x.
//   - inserts_per_sec_concurrent: sustained insert throughput while query
//     clients run against the same service (the check.sh-gated metric,
//     compared against the committed baseline).
//   - merge_pause_ms p99: wall time of explicit delta merges (mutations
//     block during a merge; readers do not).
//   - query latency under a mutate mix vs read-only. Gate: median ratio
//     <= 2x. The gate is on p50, not p99: with ~100 samples per phase the
//     p99 is the worst couple of queries, and on a small/oversubscribed
//     host that measures scheduler quanta (readers time-sliced against
//     mutator threads), not the system. p99 is still reported.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "core/query_service.h"

namespace zsky::bench {
namespace {

constexpr size_t kN = 500000;
constexpr uint32_t kDim = 8;
constexpr size_t kDominatedBatch = 1000;
constexpr size_t kReaderClients = 4;
constexpr size_t kQueriesPerClient = 25;
constexpr size_t kMutators = 2;
constexpr size_t kMutateBatch = 64;
constexpr size_t kMerges = 5;
constexpr size_t kRowsPerMergeRound = 2000;
constexpr Coord kMax = (1u << kBits) - 1;

QueryServiceOptions UpdateOptions() {
  QueryServiceOptions options;
  options.executor.bits = kBits;
  options.executor.partitioning = PartitioningScheme::kZdg;
  options.executor.local = LocalAlgorithm::kZSearch;
  options.executor.merge = MergeAlgorithm::kZMerge;
  options.executor.num_groups = 8;
  options.executor.num_map_tasks = 16;
  options.executor.num_threads = 4;
  options.max_in_flight = kReaderClients;
  options.delta_merge_threshold = 0;  // Merges are explicit in this bench.
  return options;
}

// Rows from the top corner of the domain: dominated by essentially any
// mid-domain row, so the insert fast path must absorb them.
PointSet DominatedRows(size_t n, uint64_t seed) {
  Rng rng(seed);
  PointSet out(kDim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<Coord> p(kDim);
    for (auto& c : p) c = static_cast<Coord>(kMax - rng.NextBounded(256));
    out.Append(p);
  }
  return out;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t at = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[at];
}

struct UpdatesRun {
  double bootstrap_ms = 0.0;  // One-time band bootstrap (first mutation).
  double delta_ms = 0.0;    // Dominated batch: insert + one query.
  double rebuild_ms = 0.0;  // Same rows via SetDataset + cold query.
  double speedup = 0.0;
  size_t fast_path = 0;
  double inserts_per_sec_concurrent = 0.0;
  double query_p50_readonly_ms = 0.0;
  double query_p50_mutate_ms = 0.0;
  double query_p50_ratio = 0.0;
  double query_p99_readonly_ms = 0.0;
  double query_p99_mutate_ms = 0.0;
  std::vector<double> merge_pause_ms;
  double merge_pause_p99_ms = 0.0;
  bool identical = true;
  size_t skyline = 0;
};

UpdatesRun Run(const PointSet& points) {
  UpdatesRun run;
  QueryService service(UpdateOptions(), PointSet(points));

  SkylineIndices baseline = service.Query().skyline;  // Plan build.
  std::sort(baseline.begin(), baseline.end());
  run.skyline = baseline.size();

  // --- Dominated-insert fast path vs full rebuild -----------------------
  // The first mutation after SetDataset (or a merge) pays a one-time band
  // bootstrap: one pipeline run computes the base skyline the delta
  // maintains from then on. That cost is reported separately; the speedup
  // gate measures steady-state live traffic.
  {
    Stopwatch watch;
    const MutationResult boot = service.Insert(DominatedRows(1, 6));
    run.bootstrap_ms = watch.ElapsedMs();
    run.identical = run.identical && boot.ok;
  }
  const PointSet dominated = DominatedRows(kDominatedBatch, 7);
  {
    Stopwatch watch;
    const MutationResult mr = service.Insert(dominated);
    SkylineIndices after = service.Query().skyline;
    run.delta_ms = watch.ElapsedMs();
    std::sort(after.begin(), after.end());
    run.fast_path = mr.fast_path;
    run.identical = run.identical && mr.ok && after == baseline;
  }
  {
    PointSet appended(points);
    for (size_t i = 0; i < dominated.size(); ++i) {
      appended.Append(dominated[i]);
    }
    QueryService rebuild(UpdateOptions());
    Stopwatch watch;
    rebuild.SetDataset(std::move(appended));
    SkylineIndices after = rebuild.Query().skyline;
    run.rebuild_ms = watch.ElapsedMs();
    std::sort(after.begin(), after.end());
    run.identical = run.identical && after == baseline;
  }
  run.speedup = run.delta_ms > 0.0 ? run.rebuild_ms / run.delta_ms : 0.0;

  // --- Query latency: read-only, then under a mutate mix ----------------
  auto read_phase = [&](std::atomic<bool>* stop) {
    std::vector<std::vector<double>> samples(kReaderClients);
    std::vector<std::thread> clients;
    for (size_t c = 0; c < kReaderClients; ++c) {
      clients.emplace_back([&, c] {
        for (size_t q = 0; q < kQueriesPerClient; ++q) {
          Stopwatch watch;
          (void)service.Query();
          samples[c].push_back(watch.ElapsedMs());
        }
      });
    }
    for (std::thread& t : clients) t.join();
    if (stop != nullptr) stop->store(true, std::memory_order_relaxed);
    std::vector<double> all;
    for (const auto& s : samples) all.insert(all.end(), s.begin(), s.end());
    return all;
  };

  {
    const std::vector<double> readonly = read_phase(nullptr);
    run.query_p50_readonly_ms = Percentile(readonly, 0.50);
    run.query_p99_readonly_ms = Percentile(readonly, 0.99);
  }

  std::atomic<bool> stop{false};
  std::atomic<size_t> inserted{0};
  std::atomic<bool> insert_ok{true};
  std::vector<std::thread> mutators;
  Stopwatch mutate_watch;
  for (size_t m = 0; m < kMutators; ++m) {
    mutators.emplace_back([&, m] {
      uint64_t round = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const PointSet batch =
            DominatedRows(kMutateBatch, 1000 + m * 1000 + round++);
        const MutationResult mr = service.Insert(batch);
        if (!mr.ok) insert_ok.store(false, std::memory_order_relaxed);
        inserted.fetch_add(mr.applied, std::memory_order_relaxed);
      }
    });
  }
  {
    const std::vector<double> mutate = read_phase(&stop);
    run.query_p50_mutate_ms = Percentile(mutate, 0.50);
    run.query_p99_mutate_ms = Percentile(mutate, 0.99);
  }
  const double mutate_wall_ms = mutate_watch.ElapsedMs();
  for (std::thread& t : mutators) t.join();
  run.inserts_per_sec_concurrent =
      static_cast<double>(inserted.load()) / (mutate_wall_ms / 1000.0);
  run.query_p50_ratio =
      run.query_p50_readonly_ms > 0.0
          ? run.query_p50_mutate_ms / run.query_p50_readonly_ms
          : 0.0;
  run.identical = run.identical && insert_ok.load();
  {
    SkylineIndices after = service.Query().skyline;
    std::sort(after.begin(), after.end());
    run.identical = run.identical && after == baseline;
  }

  // --- Merge pauses ----------------------------------------------------
  for (size_t m = 0; m < kMerges; ++m) {
    (void)service.Insert(DominatedRows(kRowsPerMergeRound, 9000 + m));
    Stopwatch watch;
    const bool merged = service.Merge();
    run.merge_pause_ms.push_back(watch.ElapsedMs());
    run.identical = run.identical && merged;
  }
  run.merge_pause_p99_ms = Percentile(run.merge_pause_ms, 0.99);
  {
    // Post-merge the dominated rows are gone from no skyline: answers are
    // still bit-identical to the pristine baseline ids (dominated inserts
    // append after every base row, so base ids are stable across merges).
    SkylineIndices after = service.Query().skyline;
    std::sort(after.begin(), after.end());
    run.identical = run.identical && after == baseline;
  }
  return run;
}

void WriteJson(const char* path, const UpdatesRun& run) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("!! cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"workload\": {\"n\": %zu, \"dim\": %u, "
               "\"distribution\": \"independent\"},\n",
               kN, kDim);
  std::fprintf(f,
               "  \"dominated_insert\": {\"batch\": %zu, \"delta_ms\": %.3f, "
               "\"rebuild_ms\": %.3f, \"speedup\": %.2f, "
               "\"fast_path\": %zu, \"bootstrap_ms\": %.3f},\n",
               kDominatedBatch, run.delta_ms, run.rebuild_ms, run.speedup,
               run.fast_path, run.bootstrap_ms);
  std::fprintf(f,
               "  \"inserts_per_sec_concurrent\": %.2f,\n"
               "  \"concurrent\": {\"mutators\": %zu, \"readers\": %zu},\n",
               run.inserts_per_sec_concurrent, kMutators, kReaderClients);
  std::fprintf(f,
               "  \"query_p50\": {\"readonly_ms\": %.3f, "
               "\"mutate_mix_ms\": %.3f, \"ratio\": %.3f},\n",
               run.query_p50_readonly_ms, run.query_p50_mutate_ms,
               run.query_p50_ratio);
  std::fprintf(f,
               "  \"query_p99\": {\"readonly_ms\": %.3f, "
               "\"mutate_mix_ms\": %.3f},\n",
               run.query_p99_readonly_ms, run.query_p99_mutate_ms);
  std::fprintf(f, "  \"merge_pause_ms\": {\"p99\": %.3f, \"samples\": [",
               run.merge_pause_p99_ms);
  for (size_t i = 0; i < run.merge_pause_ms.size(); ++i) {
    std::fprintf(f, "%s%.3f", i == 0 ? "" : ", ", run.merge_pause_ms[i]);
  }
  std::fprintf(f, "]},\n");
  std::fprintf(f,
               "  \"identical\": %s,\n"
               "  \"skyline_size\": %zu\n",
               run.identical ? "true" : "false", run.skyline);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  PrintBanner("updates", "incremental maintenance vs full rebuild",
              "500k x 8d: dominated-insert fast path, concurrent mutate mix, "
              "merge pauses");

  const PointSet points = MakeData(Distribution::kIndependent, kN, kDim, 42);
  const UpdatesRun run = Run(points);

  std::printf("%-32s %10.1fms (one-time, first mutation)\n",
              "band bootstrap", run.bootstrap_ms);
  std::printf("%-32s %10.1fms (fast_path %zu/%zu)\n", "dominated batch, delta",
              run.delta_ms, run.fast_path, kDominatedBatch);
  std::printf("%-32s %10.1fms\n", "dominated batch, rebuild",
              run.rebuild_ms);
  std::printf("%-32s %10.1fx\n", "speedup", run.speedup);
  std::printf("%-32s %10.1f (%zu mutators vs %zu readers)\n",
              "inserts/sec concurrent", run.inserts_per_sec_concurrent,
              kMutators, kReaderClients);
  std::printf("%-32s %10.2fms readonly / %.2fms mutate (%.2fx)\n",
              "query p50", run.query_p50_readonly_ms, run.query_p50_mutate_ms,
              run.query_p50_ratio);
  std::printf("%-32s %10.2fms readonly / %.2fms mutate (not gated)\n",
              "query p99", run.query_p99_readonly_ms,
              run.query_p99_mutate_ms);
  std::printf("%-32s %10.1fms (%zu merges)\n", "merge pause p99",
              run.merge_pause_p99_ms, kMerges);
  std::printf("%-32s %10s\n", "identical", run.identical ? "yes" : "NO");

  std::printf("# CSV,metric,value\n");
  std::printf("# CSV,delta_ms,%.3f\n", run.delta_ms);
  std::printf("# CSV,rebuild_ms,%.3f\n", run.rebuild_ms);
  std::printf("# CSV,dominated_insert_speedup,%.2f\n", run.speedup);
  std::printf("# CSV,inserts_per_sec_concurrent,%.2f\n",
              run.inserts_per_sec_concurrent);
  std::printf("# CSV,query_p50_readonly_ms,%.3f\n",
              run.query_p50_readonly_ms);
  std::printf("# CSV,query_p50_mutate_ms,%.3f\n", run.query_p50_mutate_ms);
  std::printf("# CSV,query_p99_readonly_ms,%.3f\n",
              run.query_p99_readonly_ms);
  std::printf("# CSV,query_p99_mutate_ms,%.3f\n", run.query_p99_mutate_ms);
  std::printf("# CSV,merge_pause_p99_ms,%.3f\n", run.merge_pause_p99_ms);

  WriteJson("BENCH_updates.json", run);
  const bool pass = run.identical && run.speedup >= 10.0 &&
                    run.query_p50_ratio <= 2.0;
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace zsky::bench

int main() { return zsky::bench::Main(); }
