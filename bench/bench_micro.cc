// Micro-benchmarks of the library's primitives (google-benchmark):
// Z-address encode/compare, RZ-region construction, ZB-tree build and
// queries, and the centralized skyline algorithms head-to-head.

#include <benchmark/benchmark.h>

#include "algo/bnl.h"
#include "algo/sort_based.h"
#include "common/quantizer.h"
#include "gen/synthetic.h"
#include "index/zbtree.h"
#include "index/zsearch.h"
#include "zorder/rz_region.h"
#include "zorder/zorder_codec.h"

namespace zsky {
namespace {

constexpr uint32_t kBits = 16;

PointSet MakePoints(Distribution d, size_t n, uint32_t dim, uint64_t seed) {
  return GenerateQuantized(d, n, dim, seed, Quantizer(kBits));
}

void BM_ZEncode(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  ZOrderCodec codec(dim, kBits);
  const PointSet ps = MakePoints(Distribution::kIndependent, 1024, dim, 1);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(ps[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZEncode)->Arg(2)->Arg(5)->Arg(10)->Arg(64)->Arg(225);

void BM_ZCompare(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  ZOrderCodec codec(dim, kBits);
  const PointSet ps = MakePoints(Distribution::kIndependent, 1024, dim, 2);
  const auto addresses = codec.EncodeAll(ps);
  size_t i = 0;
  for (auto _ : state) {
    const auto& a = addresses[i & 1023];
    const auto& b = addresses[(i * 7 + 1) & 1023];
    benchmark::DoNotOptimize(a < b);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZCompare)->Arg(5)->Arg(64)->Arg(225);

void BM_RZRegionFromAddresses(benchmark::State& state) {
  const uint32_t dim = static_cast<uint32_t>(state.range(0));
  ZOrderCodec codec(dim, kBits);
  const PointSet ps = MakePoints(Distribution::kIndependent, 1024, dim, 3);
  auto addresses = codec.EncodeAll(ps);
  size_t i = 0;
  for (auto _ : state) {
    auto a = addresses[i & 1023];
    auto b = addresses[(i + 1) & 1023];
    if (b < a) std::swap(a, b);
    benchmark::DoNotOptimize(RZRegion::FromAddresses(codec, a, b));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RZRegionFromAddresses)->Arg(5)->Arg(64);

void BM_ZBTreeBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ZOrderCodec codec(5, kBits);
  const PointSet ps = MakePoints(Distribution::kIndependent, n, 5, 4);
  for (auto _ : state) {
    ZBTree tree(&codec, ps);
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ZBTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ZBTreeExistsDominator(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ZOrderCodec codec(5, kBits);
  const PointSet ps = MakePoints(Distribution::kAnticorrelated, n, 5, 5);
  ZBTree tree(&codec, ps);
  const PointSet probes = MakePoints(Distribution::kIndependent, 1024, 5, 6);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.ExistsDominatorOf(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZBTreeExistsDominator)->Arg(10000)->Arg(100000);

SkylineIndices BnlScalar(const PointSet& ps) { return BnlSkyline(ps, false); }
SkylineIndices BnlBlock(const PointSet& ps) { return BnlSkyline(ps, true); }
SkylineIndices SortBasedScalar(const PointSet& ps) {
  return SortBasedSkyline(ps, false);
}
SkylineIndices SortBasedBlock(const PointSet& ps) {
  return SortBasedSkyline(ps, true);
}

template <SkylineIndices (*Algo)(const PointSet&)>
void BM_CentralizedSkyline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t dim = static_cast<uint32_t>(state.range(1));
  const PointSet ps = MakePoints(Distribution::kIndependent, n, dim, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Algo(ps));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_TEMPLATE(BM_CentralizedSkyline, BnlScalar)
    ->Args({10000, 5})
    ->Args({50000, 5});
BENCHMARK_TEMPLATE(BM_CentralizedSkyline, BnlBlock)
    ->Args({10000, 5})
    ->Args({50000, 5});
BENCHMARK_TEMPLATE(BM_CentralizedSkyline, SortBasedScalar)
    ->Args({10000, 5})
    ->Args({50000, 5});
BENCHMARK_TEMPLATE(BM_CentralizedSkyline, SortBasedBlock)
    ->Args({10000, 5})
    ->Args({50000, 5});

void BM_ZSearch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const uint32_t dim = static_cast<uint32_t>(state.range(1));
  ZOrderCodec codec(dim, kBits);
  const PointSet ps = MakePoints(Distribution::kIndependent, n, dim, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZSearchSkyline(codec, ps));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ZSearch)->Args({10000, 5})->Args({50000, 5})->Args({50000, 8});

}  // namespace
}  // namespace zsky

BENCHMARK_MAIN();
