// Section 5.4 model validation: the paper's analytical estimates of (a)
// how many points job 1 prunes (via the total dominance volume V_t) and
// (b) Z-merge's cost growth, against measured values.
//
// Paper behaviour to reproduce:
//  - correlated data: nearly everything pruned (n_p -> n - M);
//  - anti-correlated data: pruning bounded away from n (many skyline
//    candidates survive);
//  - measured Z-merge time grows ~ n~ * d * log_d(n~).

#include <string>

#include "bench_util.h"
#include "core/analysis.h"
#include "sample/reservoir.h"

namespace zsky::bench {
namespace {

void ValidatePruning() {
  std::printf("\n--- V_t pruning model vs measured job-1 pruning ---\n");
  std::printf("%-15s %10s %12s %12s %12s %12s\n", "distribution", "V_t",
              "pred-pruned", "meas-pruned", "pred-cand", "meas-cand");
  const size_t n = 100'000;
  for (auto dist :
       {Distribution::kCorrelated, Distribution::kIndependent,
        Distribution::kAnticorrelated}) {
    const PointSet points = MakeData(dist, n, 5, 61);
    // Learn the same plan the executor would.
    const ZOrderCodec codec(5, kBits);
    zsky::Rng rng(42);
    const PointSet sample = ReservoirSample(points, 2048, rng);
    ZOrderGroupedPartitioner::Options zopt;
    zopt.num_groups = 32;
    zopt.expansion = 4;
    zopt.strategy = GroupingStrategy::kDominance;
    const ZOrderGroupedPartitioner partitioner(&codec, sample, zopt);
    const PruningAnalysis analysis = AnalyzePruning(partitioner, n);

    Strategy s{"zdg", PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
               MergeAlgorithm::kZMerge};
    const auto result =
        ParallelSkylineExecutor(MakeOptions(s, 32)).Execute(points);
    const size_t measured_pruned = n - result.metrics.candidates;
    std::printf("%-15s %10.4f %12zu %12zu %12zu %12zu\n",
                std::string(DistributionName(dist)).c_str(),
                analysis.total_dominance_volume, analysis.predicted_pruned,
                measured_pruned, analysis.predicted_candidates,
                result.metrics.candidates);
  }
  std::printf("(prediction is an upper-trend model: it counts geometric "
              "dominance volume, the SZB filter prunes on top of it)\n");
}

void ValidateMergeCost() {
  std::printf("\n--- Z-merge cost model: measured ms vs n~*d*log_d(n~) ---\n");
  std::printf("%10s %10s %12s %14s %12s\n", "n", "candidates", "merge-ms",
              "model-units", "ms/unit(e6)");
  for (size_t n : {40'000ul, 80'000ul, 160'000ul}) {
    const PointSet points = MakeData(Distribution::kAnticorrelated, n, 5,
                                     67);
    Strategy s{"zdg", PartitioningScheme::kZdg, LocalAlgorithm::kZSearch,
               MergeAlgorithm::kZMerge};
    const auto result =
        ParallelSkylineExecutor(MakeOptions(s, 32)).Execute(points);
    const double model =
        PredictMergeCost(result.metrics.candidates, points.dim());
    std::printf("%10zu %10zu %12.1f %14.0f %12.3f\n", n,
                result.metrics.candidates, result.metrics.sim_job2_ms,
                model, 1e6 * result.metrics.sim_job2_ms / model);
  }
  std::printf("(a roughly constant ms/unit column validates the growth "
              "model)\n");
}

}  // namespace
}  // namespace zsky::bench

int main() {
  using namespace zsky::bench;
  PrintBanner("Section 5.4 analysis", "pruning & merge-cost models",
              "100k 5-d points, ZDG plan with M=32, delta=4");
  ValidatePruning();
  ValidateMergeCost();
  return 0;
}
